// On-disk durability (src/sync/storage): checkpoint file format, the
// append-only block log, epoch rotation, torn-tail repair (discard AND
// on-disk truncation, so re-appends stay replayable) and corrupt-newest
// refusal — everything `simctl serve --data-dir` leans on when a
// SIGKILLed member restarts over the same directory.
#include "sync/storage.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace blockdag {
namespace {

using sync::DataDir;
using sync::DataDirConfig;
using sync::LogKind;
using sync::LogRecord;
using sync::MemStore;

// Scratch directory under the test's cwd (the build tree), removed on
// destruction so repeated ctest runs start clean.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "storage_test_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path = made;
  }
  ~TempDir() {
    if (path.empty()) return;
    if (DIR* dir = ::opendir(path.c_str())) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path.c_str());
  }
};

Bytes some_bytes(std::size_t n, std::uint8_t seed) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return out;
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

void write_raw(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(StorageCodec, CheckpointFileRoundTripsAndRejectsEveryMutation) {
  const Bytes payload = some_bytes(97, 3);
  const Bytes file = sync::encode_checkpoint_file(payload);

  auto decoded = sync::decode_checkpoint_file(file);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);

  // Every proper prefix is rejected (torn writes never reach load_latest
  // thanks to write-tmp→rename, but a corrupted disk can still truncate).
  for (std::size_t len = 0; len < file.size(); ++len) {
    const Bytes torn(file.begin(), file.begin() + len);
    EXPECT_FALSE(sync::decode_checkpoint_file(torn).has_value())
        << "prefix of length " << len << " decoded";
  }
  // Every single-byte flip is rejected: magic, version, CRC field or the
  // CRC-covered payload.
  for (std::size_t i = 0; i < file.size(); ++i) {
    Bytes flipped = file;
    flipped[i] ^= 0xff;
    EXPECT_FALSE(sync::decode_checkpoint_file(flipped).has_value())
        << "flip at byte " << i << " decoded";
  }
  // Trailing garbage is rejected too (the format is self-delimiting).
  Bytes padded = file;
  padded.push_back(0x00);
  EXPECT_FALSE(sync::decode_checkpoint_file(padded).has_value());
}

TEST(StorageCodec, LogDecodeStopsAtTheTear) {
  const std::vector<LogRecord> records = {
      {LogKind::kOwnBlock, some_bytes(21, 1)},
      {LogKind::kRecvBlock, some_bytes(34, 2)},
      {LogKind::kOwnBlock, some_bytes(5, 3)},
  };
  Bytes file;
  std::vector<std::size_t> ends;  // byte offset where record i completes
  for (const LogRecord& rec : records) {
    const Bytes enc = sync::encode_log_record(rec.kind, rec.payload);
    file.insert(file.end(), enc.begin(), enc.end());
    ends.push_back(file.size());
  }

  const std::vector<LogRecord> full = sync::decode_log(file);
  ASSERT_EQ(full.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(static_cast<int>(full[i].kind), static_cast<int>(records[i].kind));
    EXPECT_EQ(full[i].payload, records[i].payload);
  }

  // Truncate at EVERY byte: replay returns exactly the records that end
  // before the tear, each intact — never a partial or shifted record —
  // and reports the valid-prefix offset load_latest truncates the file
  // to (the end of the last intact record).
  for (std::size_t len = 0; len <= file.size(); ++len) {
    const Bytes torn(file.begin(), file.begin() + len);
    std::size_t prefix = 0;
    const std::vector<LogRecord> got = sync::decode_log(torn, prefix);
    std::size_t expected = 0;
    while (expected < ends.size() && ends[expected] <= len) ++expected;
    ASSERT_EQ(got.size(), expected) << "truncated at " << len;
    EXPECT_EQ(prefix, expected == 0 ? 0 : ends[expected - 1])
        << "truncated at " << len;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].payload, records[i].payload);
    }
  }

  // A flipped byte inside record 1 stops replay after record 0: bytes past
  // a corrupt record cannot be trusted to be framed correctly.
  Bytes corrupt = file;
  corrupt[ends[0] + 11] ^= 0xff;
  EXPECT_EQ(sync::decode_log(corrupt).size(), 1u);

  // A forged length pointing past the buffer is a torn tail, not a crash.
  Bytes forged = file;
  forged[ends[0]] = 0xff;
  forged[ends[0] + 1] = 0xff;
  forged[ends[0] + 2] = 0xff;
  forged[ends[0] + 3] = 0xff;
  EXPECT_EQ(sync::decode_log(forged).size(), 1u);
}

TEST(StorageDataDir, StatePersistsAcrossReopen) {
  TempDir tmp;
  const Bytes ckpt = some_bytes(64, 9);
  {
    DataDir dir(tmp.path);
    ASSERT_TRUE(dir.ok());
    EXPECT_TRUE(dir.store_checkpoint(1, ckpt));
    EXPECT_TRUE(dir.append_block(LogKind::kOwnBlock, some_bytes(10, 4)));
    EXPECT_TRUE(dir.append_block(LogKind::kRecvBlock, some_bytes(12, 5)));
  }
  DataDir reopened(tmp.path);
  ASSERT_TRUE(reopened.ok());
  std::uint64_t epoch = 99;
  Bytes loaded;
  std::vector<LogRecord> log;
  ASSERT_TRUE(reopened.load_latest(epoch, loaded, log));
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(loaded, ckpt);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(static_cast<int>(log[0].kind), static_cast<int>(LogKind::kOwnBlock));
  EXPECT_EQ(log[0].payload, some_bytes(10, 4));
  EXPECT_EQ(log[1].payload, some_bytes(12, 5));

  // Appends after a load continue the loaded epoch's log.
  EXPECT_TRUE(reopened.append_block(LogKind::kRecvBlock, some_bytes(3, 6)));
  DataDir again(tmp.path);
  ASSERT_TRUE(again.load_latest(epoch, loaded, log));
  EXPECT_EQ(log.size(), 3u);
}

TEST(StorageDataDir, RotationDropsSubsumedEpochs) {
  TempDir tmp;
  DataDir dir(tmp.path);
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir.store_checkpoint(1, some_bytes(16, 1)));
  EXPECT_TRUE(dir.append_block(LogKind::kOwnBlock, some_bytes(8, 2)));
  EXPECT_TRUE(dir.store_checkpoint(2, some_bytes(16, 3)));

  // Epoch-1 files are gone: disk usage tracks the live DAG, not history.
  EXPECT_FALSE(file_exists(tmp.path + "/checkpoint-1.ckpt"));
  EXPECT_FALSE(file_exists(tmp.path + "/blocks-1.log"));
  EXPECT_TRUE(file_exists(tmp.path + "/checkpoint-2.ckpt"));

  std::uint64_t epoch = 0;
  Bytes ckpt;
  std::vector<LogRecord> log;
  ASSERT_TRUE(dir.load_latest(epoch, ckpt, log));
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(ckpt, some_bytes(16, 3));
  EXPECT_TRUE(log.empty()) << "rotation must truncate the block log";
}

TEST(StorageDataDir, CorruptNewestCheckpointRefusesToLoad) {
  TempDir tmp;
  {
    DataDir dir(tmp.path);
    ASSERT_TRUE(dir.store_checkpoint(1, some_bytes(40, 7)));
    ASSERT_TRUE(dir.append_block(LogKind::kRecvBlock, some_bytes(6, 8)));
  }
  // A later checkpoint whose bytes rotted on disk (flip inside the
  // CRC-covered region). Written by hand: rename-atomicity means only
  // media corruption — not a torn write — can produce this file. Falling
  // back to epoch 1 would be amnesia in the real sequence of events
  // (rotation would already have unlinked blocks-1.log, silently dropping
  // every block since and regressing next_k into sequence reuse), so the
  // load must be refused outright — the server halts / simctl exits 3.
  Bytes rotten = sync::encode_checkpoint_file(some_bytes(40, 9));
  rotten[rotten.size() - 1] ^= 0xff;
  write_raw(tmp.path + "/checkpoint-2.ckpt", rotten);

  DataDir dir(tmp.path);
  std::uint64_t epoch = 0;
  Bytes ckpt;
  std::vector<LogRecord> log;
  EXPECT_FALSE(dir.load_latest(epoch, ckpt, log))
      << "corrupt newest checkpoint must refuse, not fall back";
  EXPECT_TRUE(ckpt.empty());
  EXPECT_TRUE(log.empty());
}

TEST(StorageDataDir, TornLogTailIsDiscardedOnLoad) {
  TempDir tmp;
  {
    DataDir dir(tmp.path);
    ASSERT_TRUE(dir.store_checkpoint(1, some_bytes(16, 1)));
    for (std::uint8_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(dir.append_block(LogKind::kOwnBlock, some_bytes(20, i)));
    }
  }
  // SIGKILL mid-append: the tail of the last record never hit the file.
  const std::string log_file = tmp.path + "/blocks-1.log";
  struct stat st{};
  ASSERT_EQ(::stat(log_file.c_str(), &st), 0);
  ASSERT_EQ(::truncate(log_file.c_str(), st.st_size - 3), 0);

  DataDir dir(tmp.path);
  std::uint64_t epoch = 0;
  Bytes ckpt;
  std::vector<LogRecord> log;
  ASSERT_TRUE(dir.load_latest(epoch, ckpt, log));
  ASSERT_EQ(log.size(), 2u) << "torn third record should be dropped";
  EXPECT_EQ(log[0].payload, some_bytes(20, 0));
  EXPECT_EQ(log[1].payload, some_bytes(20, 1));

  // The tear is repaired ON DISK, not just skipped in memory: the file
  // now ends exactly where the last valid record does.
  ASSERT_EQ(::stat(log_file.c_str(), &st), 0);
  Bytes repaired_file;
  {
    std::ifstream in(log_file, std::ios::binary);
    repaired_file.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
  }
  const Bytes rec0 = sync::encode_log_record(LogKind::kOwnBlock, some_bytes(20, 0));
  const Bytes rec1 = sync::encode_log_record(LogKind::kOwnBlock, some_bytes(20, 1));
  EXPECT_EQ(repaired_file.size(), rec0.size() + rec1.size());
}

TEST(StorageDataDir, AppendsAfterTornTailSurviveTheNextReplay) {
  // The crash-recovery double-fault: SIGKILL tears the log tail, the
  // server restarts and appends new blocks, then crashes again. If the
  // torn bytes were still on disk, the re-opened O_APPEND log would put
  // the new records BEHIND the tear, where the next replay (which stops
  // at the tear) cannot see them — own blocks silently vanish, next_k
  // regresses and the server re-uses sequence numbers. load_latest must
  // truncate the tear away so post-restart appends stay replayable.
  TempDir tmp;
  {
    DataDir dir(tmp.path);
    ASSERT_TRUE(dir.store_checkpoint(1, some_bytes(16, 1)));
    ASSERT_TRUE(dir.append_block(LogKind::kOwnBlock, some_bytes(20, 0)));
    ASSERT_TRUE(dir.append_block(LogKind::kOwnBlock, some_bytes(20, 1)));
  }
  const std::string log_file = tmp.path + "/blocks-1.log";
  struct stat st{};
  ASSERT_EQ(::stat(log_file.c_str(), &st), 0);
  ASSERT_EQ(::truncate(log_file.c_str(), st.st_size - 3), 0);  // crash #1

  {
    DataDir dir(tmp.path);
    std::uint64_t epoch = 0;
    Bytes ckpt;
    std::vector<LogRecord> log;
    ASSERT_TRUE(dir.load_latest(epoch, ckpt, log));
    ASSERT_EQ(log.size(), 1u);
    ASSERT_TRUE(dir.append_block(LogKind::kOwnBlock, some_bytes(20, 2)));
  }  // crash #2 (clean close, but the file is whatever appends left)

  DataDir again(tmp.path);
  std::uint64_t epoch = 0;
  Bytes ckpt;
  std::vector<LogRecord> log;
  ASSERT_TRUE(again.load_latest(epoch, ckpt, log));
  ASSERT_EQ(log.size(), 2u) << "post-restart append lost behind the tear";
  EXPECT_EQ(log[0].payload, some_bytes(20, 0));
  EXPECT_EQ(static_cast<int>(log[1].kind),
            static_cast<int>(LogKind::kOwnBlock));
  EXPECT_EQ(log[1].payload, some_bytes(20, 2));
}

TEST(StorageDataDir, PreCheckpointAppendsLandInEpochZero) {
  TempDir tmp;
  {
    DataDir dir(tmp.path);
    ASSERT_TRUE(dir.append_block(LogKind::kOwnBlock, some_bytes(9, 2)));
  }
  DataDir dir(tmp.path);
  std::uint64_t epoch = 7;
  Bytes ckpt;
  std::vector<LogRecord> log;
  ASSERT_TRUE(dir.load_latest(epoch, ckpt, log));
  EXPECT_EQ(epoch, 0u);
  EXPECT_TRUE(ckpt.empty());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].payload, some_bytes(9, 2));
}

TEST(StorageDataDir, EmptyDirectoryIsFreshNotAnError) {
  TempDir tmp;
  DataDir dir(tmp.path);
  std::uint64_t epoch = 7;
  Bytes ckpt = some_bytes(4, 1);
  std::vector<LogRecord> log(3);
  ASSERT_TRUE(dir.load_latest(epoch, ckpt, log));
  EXPECT_EQ(epoch, 0u);
  EXPECT_TRUE(ckpt.empty());
  EXPECT_TRUE(log.empty());
}

TEST(StorageDataDir, UncreatableRootFailsClosed) {
  DataDir dir("/proc/blockdag-no-such-dir/data");
  EXPECT_FALSE(dir.ok());
  EXPECT_FALSE(dir.store_checkpoint(1, some_bytes(4, 1)));
  EXPECT_FALSE(dir.append_block(LogKind::kOwnBlock, some_bytes(4, 2)));
  std::uint64_t epoch = 0;
  Bytes ckpt;
  std::vector<LogRecord> log;
  EXPECT_FALSE(dir.load_latest(epoch, ckpt, log));
}

TEST(StorageDataDir, FsyncAppendsModeWorks) {
  TempDir tmp;
  DataDirConfig config;
  config.fsync_appends = true;
  DataDir dir(tmp.path, config);
  ASSERT_TRUE(dir.store_checkpoint(1, some_bytes(8, 1)));
  ASSERT_TRUE(dir.append_block(LogKind::kRecvBlock, some_bytes(8, 2)));
  std::uint64_t epoch = 0;
  Bytes ckpt;
  std::vector<LogRecord> log;
  ASSERT_TRUE(dir.load_latest(epoch, ckpt, log));
  EXPECT_EQ(log.size(), 1u);
}

TEST(StorageMemStore, MirrorsDataDirSemantics) {
  MemStore store;
  std::uint64_t epoch = 9;
  Bytes ckpt;
  std::vector<LogRecord> log;
  ASSERT_TRUE(store.load_latest(epoch, ckpt, log));
  EXPECT_EQ(epoch, 0u);
  EXPECT_TRUE(ckpt.empty());

  EXPECT_TRUE(store.append_block(LogKind::kOwnBlock, some_bytes(4, 1)));
  EXPECT_TRUE(store.store_checkpoint(1, some_bytes(10, 2)));  // rotates
  EXPECT_TRUE(store.append_block(LogKind::kRecvBlock, some_bytes(4, 3)));
  ASSERT_TRUE(store.load_latest(epoch, ckpt, log));
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(ckpt, some_bytes(10, 2));
  ASSERT_EQ(log.size(), 1u) << "pre-checkpoint append must be rotated away";
  EXPECT_EQ(log[0].payload, some_bytes(4, 3));
}

}  // namespace
}  // namespace blockdag
