// Checkpoint decode hardening (ISSUE satellite): a checkpoint file is
// trusted *own* storage, but disks rot and operators copy files around, so
// the decoder must survive arbitrary mutation — never crash, never
// allocate from forged counts, and refuse anything whose signature or
// structure does not check out. A server pointed at corrupt storage must
// come up cleanly un-restored (and halted by the runtime), not
// half-restored.
#include <gtest/gtest.h>

#include "protocols/brb.h"
#include "runtime/cluster.h"
#include "sync/checkpoint.h"
#include "sync/checkpointer.h"
#include "sync/storage.h"

namespace blockdag {
namespace {

ClusterConfig fuzz_config() {
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 101;
  cfg.pacing.interval = sim_ms(10);
  return cfg;
}

// One valid signed checkpoint built from real cluster state, shared by the
// sweeps (building it is the expensive part).
struct Fixture {
  brb::BrbFactory factory;
  Cluster cluster{factory, fuzz_config()};
  Bytes wire;

  Fixture() {
    cluster.start();
    for (std::uint32_t i = 0; i < 5; ++i) {
      cluster.request(i % 4, 1 + i,
                      brb::make_broadcast(Bytes{static_cast<std::uint8_t>(i)}));
      cluster.run_for(sim_ms(40));
    }
    EXPECT_TRUE(cluster.quiesce_and_converge());
    cluster.shim(0).collect_garbage();  // exercise the horizon fields too
    const auto cp = sync::build_checkpoint(cluster.shim(0), 1, 4);
    EXPECT_TRUE(cp.has_value());
    if (cp) wire = sync::encode_signed_checkpoint(*cp, cluster.signatures());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(CheckpointFuzz, ValidWireDecodesSignedAndUnsigned) {
  Fixture& f = fixture();
  ASSERT_GT(f.wire.size(), 0u);
  EXPECT_TRUE(
      sync::decode_signed_checkpoint(f.wire, &f.cluster.signatures(), 0)
          .has_value());
  // sigs == nullptr skips signature verification (the storage layer's CRC
  // already screens accidental corruption); structure still decodes.
  EXPECT_TRUE(sync::decode_signed_checkpoint(f.wire, nullptr, 0).has_value());
}

TEST(CheckpointFuzz, EveryTruncationIsRefused) {
  Fixture& f = fixture();
  for (std::size_t len = 0; len < f.wire.size(); ++len) {
    const Bytes torn(f.wire.begin(), f.wire.begin() + len);
    EXPECT_FALSE(
        sync::decode_signed_checkpoint(torn, &f.cluster.signatures(), 0)
            .has_value())
        << "prefix of length " << len << " decoded";
    // The unsigned path must at minimum not crash or over-allocate; a
    // truncation can never yield a full checkpoint.
    EXPECT_FALSE(sync::decode_signed_checkpoint(torn, nullptr, 0).has_value())
        << "unsigned prefix of length " << len << " decoded";
  }
}

TEST(CheckpointFuzz, EveryByteFlipIsRefusedUnderSignature) {
  Fixture& f = fixture();
  for (std::size_t i = 0; i < f.wire.size(); ++i) {
    Bytes flipped = f.wire;
    flipped[i] ^= 0xff;
    EXPECT_FALSE(
        sync::decode_signed_checkpoint(flipped, &f.cluster.signatures(), 0)
            .has_value())
        << "flip at byte " << i << " decoded";
  }
}

// Structural bound every accepted (unsigned) decode must satisfy: hardened
// decoding caps every count by the bytes remaining BEFORE allocating, so
// the total element count across all vectors can never exceed the wire
// size — a forged 0xFFFFFFFF count is refused, not pre-allocated.
void expect_allocation_bounded(const std::optional<sync::Checkpoint>& cp,
                               std::size_t wire_size, std::size_t offset) {
  if (!cp) return;
  EXPECT_EQ(cp->records.size(), cp->blocks.size())
      << "inconsistent decode at offset " << offset;
  const std::size_t elements = cp->blocks.size() + cp->records.size() +
                               cp->horizon.size() + cp->building_preds.size() +
                               cp->indications.size();
  EXPECT_LE(elements, wire_size) << "over-allocation at offset " << offset;
  std::size_t block_bytes = 0;
  for (const Bytes& b : cp->blocks) block_bytes += b.size();
  EXPECT_LE(block_bytes, wire_size) << "over-allocation at offset " << offset;
}

TEST(CheckpointFuzz, ByteFlipsNeverCrashTheUnsignedDecoder) {
  // Without the signature screen, flips reach the structural decoder. A
  // flip inside free-form bytes (a block payload, an indication) may still
  // decode — that's the storage CRC's and the signature's job to catch —
  // but whatever decodes must be internally consistent and allocation-
  // bounded, and nothing may crash or hang.
  Fixture& f = fixture();
  for (std::size_t i = 0; i < f.wire.size(); ++i) {
    Bytes flipped = f.wire;
    flipped[i] ^= 0xff;
    expect_allocation_bounded(sync::decode_signed_checkpoint(flipped, nullptr, 0),
                              f.wire.size(), i);
  }
}

TEST(CheckpointFuzz, ForgedCountsAreRejectedBeforeAllocation) {
  // Stamp 0xFFFFFFFF over every 32-bit window of the wire — wherever a
  // count or length lives, it now claims ~4G elements against a few KB of
  // remaining bytes. Hardened decoding bounds every count by the remaining
  // bytes *before* allocating, so each decode returns promptly (a 4G
  // pre-allocation would OOM the test long before any assert fires).
  Fixture& f = fixture();
  for (std::size_t i = 0; i + 4 <= f.wire.size(); ++i) {
    Bytes forged = f.wire;
    forged[i] = forged[i + 1] = forged[i + 2] = forged[i + 3] = 0xff;
    expect_allocation_bounded(sync::decode_signed_checkpoint(forged, nullptr, 0),
                              f.wire.size(), i);
  }
}

TEST(CheckpointFuzz, VersionSkewIsRefusedFirst) {
  Fixture& f = fixture();
  Bytes future = f.wire;
  ASSERT_EQ(future[0], sync::kCheckpointVersion);
  future[0] = sync::kCheckpointVersion + 1;
  EXPECT_FALSE(sync::decode_signed_checkpoint(future, &f.cluster.signatures(), 0)
                   .has_value());
  EXPECT_FALSE(sync::decode_signed_checkpoint(future, nullptr, 0).has_value());
}

TEST(CheckpointFuzz, StorageCrcScreensCorruptionBeforeTheDecoder) {
  Fixture& f = fixture();
  const Bytes file = sync::encode_checkpoint_file(f.wire);
  ASSERT_TRUE(sync::decode_checkpoint_file(file).has_value());
  for (std::size_t i = 0; i < file.size(); i += 7) {
    Bytes flipped = file;
    flipped[i] ^= 0x10;
    EXPECT_FALSE(sync::decode_checkpoint_file(flipped).has_value())
        << "flip at byte " << i << " passed the CRC";
  }
}

TEST(CheckpointFuzz, CorruptStorageLeavesTheServerCleanlyUnrestored) {
  Fixture& f = fixture();
  brb::BrbFactory factory;
  // A sample of mutations, each stored as the newest checkpoint of a fresh
  // server: restore must fail atomically — no partial DAG, no indications,
  // construction state untouched.
  std::vector<Bytes> mutations;
  for (std::size_t i = 0; i < f.wire.size(); i += f.wire.size() / 16 + 1) {
    Bytes m = f.wire;
    m[i] ^= 0xff;
    mutations.push_back(std::move(m));
  }
  mutations.emplace_back(f.wire.begin(), f.wire.begin() + f.wire.size() / 2);
  mutations.push_back(Bytes{0xde, 0xad, 0xbe, 0xef});

  for (std::size_t i = 0; i < mutations.size(); ++i) {
    sync::MemStore store;
    ASSERT_TRUE(store.store_checkpoint(1, mutations[i]));
    Cluster fresh(factory, fuzz_config());
    Shim& shim = fresh.shim(0);
    sync::Checkpointer checkpointer(shim, fresh.signatures(), 4, &store);
    EXPECT_FALSE(checkpointer.restore_from_storage())
        << "mutation " << i << " restored";
    EXPECT_FALSE(checkpointer.restore_stats().restored);
    EXPECT_EQ(shim.dag().size(), 0u) << "mutation " << i << " left state";
    EXPECT_TRUE(shim.indications().empty());
    EXPECT_FALSE(shim.restoring()) << "restore flag leaked";
  }
}

}  // namespace
}  // namespace blockdag
