// Direct unit tests for the real-time TimerWheel (rt/timer_wheel.h).
//
// Until now the wheel was exercised only through the threaded-runtime
// end-to-end test; these pin its contract in isolation: at-most-once
// firing, cancel() returning true exactly when the action will never run,
// cancellation from foreign threads, re-arming from inside an expiry
// callback (the FWD retry pattern in gossip), and the IdleTracker
// accounting that quiesce detection depends on.
#include "rt/timer_wheel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace blockdag::rt {
namespace {

using namespace std::chrono_literals;

// Spins (politely) until `pred` holds or ~5s elapse. Timing-sensitive
// assertions stay loose so a loaded CI box cannot flake them.
template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(TimerWheel, FiresOnceAndCancelAfterFireReturnsFalse) {
  IdleTracker idle;
  TimerWheel wheel(idle);
  wheel.start();
  std::atomic<int> fired{0};
  const auto id = wheel.schedule_after(sim_ms(1), [&] { ++fired; });
  ASSERT_TRUE(eventually([&] { return fired.load() == 1; }));
  // The work unit was released on firing.
  ASSERT_TRUE(eventually([&] { return idle.count() == 0; }));
  // A fired timer is spent: cancel must report "too late" and never make
  // the count go negative (sub on a fired timer would corrupt quiesce).
  EXPECT_FALSE(wheel.cancel(id));
  EXPECT_EQ(idle.count(), 0u);
  std::this_thread::sleep_for(5ms);
  EXPECT_EQ(fired.load(), 1);  // at-most-once
  wheel.stop();
}

TEST(TimerWheel, CancelPreventsFiringAndReleasesIdleUnit) {
  IdleTracker idle;
  TimerWheel wheel(idle);
  wheel.start();
  std::atomic<int> fired{0};
  const auto id = wheel.schedule_after(sim_sec(3600), [&] { ++fired; });
  EXPECT_EQ(idle.count(), 1u);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_EQ(idle.count(), 0u);
  EXPECT_FALSE(wheel.cancel(id));  // double-cancel: already spent
  wheel.stop();
  EXPECT_EQ(fired.load(), 0);
}

TEST(TimerWheel, CancelFromAnotherThreadIsSafe) {
  // The gossip FWD path cancels timers from the owning server's thread
  // while the wheel's timing thread races toward the deadline; neither
  // side may double-run or double-release. Drive many racy iterations:
  // every timer must end up exactly (fired XOR cancelled).
  IdleTracker idle;
  TimerWheel wheel(idle);
  wheel.start();
  std::atomic<int> fired{0};
  int cancelled = 0;
  constexpr int kIterations = 200;
  for (int i = 0; i < kIterations; ++i) {
    // Deadline so short the cancel below truly races the expiry.
    const auto id = wheel.schedule_after(sim_us(50), [&] { ++fired; });
    std::thread canceller([&wheel, id, &cancelled] {
      if (wheel.cancel(id)) ++cancelled;
    });
    canceller.join();
  }
  ASSERT_TRUE(eventually([&] { return idle.count() == 0; }));
  EXPECT_EQ(fired.load() + cancelled, kIterations);
  wheel.stop();
}

TEST(TimerWheel, ReArmDuringExpiryRunsTheNextShot) {
  // The FWD retry loop re-arms from inside the expiry callback
  // (fire_fwd schedules the next attempt); the wheel must accept
  // schedule_after() while it is mid-expiry without deadlock or loss.
  IdleTracker idle;
  TimerWheel wheel(idle);
  wheel.start();
  std::atomic<int> shots{0};
  std::function<void()> chain = [&] {
    if (++shots < 3) wheel.schedule_after(sim_us(200), chain);
  };
  wheel.schedule_after(sim_us(200), chain);
  ASSERT_TRUE(eventually([&] { return shots.load() == 3; }));
  ASSERT_TRUE(eventually([&] { return idle.count() == 0; }));
  wheel.stop();
  EXPECT_EQ(shots.load(), 3);
}

TEST(TimerWheel, EarlierTimerArmedSecondStillFiresFirst) {
  // The timing thread sleeps toward the earliest deadline; arming an
  // earlier timer while it sleeps must preempt the nap, not wait it out.
  IdleTracker idle;
  TimerWheel wheel(idle);
  wheel.start();
  std::atomic<int> order{0};
  std::atomic<int> first_seen{-1};
  wheel.schedule_after(sim_ms(200), [&] {
    int expected = -1;
    first_seen.compare_exchange_strong(expected, 1);
    ++order;
  });
  wheel.schedule_after(sim_ms(1), [&] {
    int expected = -1;
    first_seen.compare_exchange_strong(expected, 0);
    ++order;
  });
  ASSERT_TRUE(eventually([&] { return order.load() == 2; }));
  EXPECT_EQ(first_seen.load(), 0) << "the 1ms timer must beat the 200ms one";
  wheel.stop();
}

TEST(TimerWheel, StopCancelsArmedTimersAndReleasesIdleUnits) {
  IdleTracker idle;
  TimerWheel wheel(idle);
  wheel.start();
  std::atomic<int> fired{0};
  for (int i = 0; i < 8; ++i) {
    wheel.schedule_after(sim_sec(3600), [&] { ++fired; });
  }
  EXPECT_EQ(idle.count(), 8u);
  wheel.stop();
  EXPECT_EQ(idle.count(), 0u);
  EXPECT_EQ(fired.load(), 0);
}

TEST(TimerWheel, NowIsMonotonic) {
  IdleTracker idle;
  TimerWheel wheel(idle);
  SimTime last = wheel.now();
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = wheel.now();
    ASSERT_GE(t, last);
    last = t;
  }
}

}  // namespace
}  // namespace blockdag::rt
