// ThreadedRuntime: the protocol stack on real threads.
//
// The acceptance property of the Transport/TimerService seam: the same
// sans-io Shim/GossipServer/Interpreter code, moved from the deterministic
// simulator onto one-thread-per-server with an MPSC mailbox and a real
// monotonic clock, still satisfies the paper's convergence claims — every
// server ends with the identical joint DAG (Lemma 3.7) and the identical
// digest_of interpretation of every block (Lemma 4.2), and BRB totality
// holds across threads. Run under ThreadSanitizer in CI (BUILDING.md).
#include "rt/threaded_runtime.h"

#include <gtest/gtest.h>

#include "protocols/brb.h"
#include "protocols/fifo_brb.h"

namespace blockdag {
namespace {

using rt::ThreadedConfig;
using rt::ThreadedRuntime;

ThreadedConfig fast_config(std::uint32_t n) {
  ThreadedConfig cfg;
  cfg.n_servers = n;
  cfg.pacing.interval = sim_ms(2);           // 2ms real-time beats
  cfg.gossip.fwd_retry_delay = sim_ms(5);    // quick FWD recovery
  cfg.seed = 7;
  return cfg;
}

TEST(ThreadedRuntime, ConvergesToIdenticalDagsAndInterpretations) {
  brb::BrbFactory factory;
  const std::uint32_t n = 4;
  ThreadedRuntime runtime(factory, fast_config(n));
  runtime.start();

  // Every server broadcasts a client request on its own label, injected
  // from the harness thread while dissemination beats run concurrently.
  for (ServerId s = 0; s < n; ++s) {
    runtime.request(s, 1 + s, brb::make_broadcast(Bytes{static_cast<std::uint8_t>(s)}));
  }

  ASSERT_TRUE(runtime.quiesce_and_converge());

  // Lemma 3.7: identical joint DAG everywhere.
  const Bytes dag0 = runtime.dag_digest(0);
  // Lemma 4.2: identical interpretation of every block everywhere.
  const Bytes interp0 = runtime.interpretation_digest(0);
  EXPECT_FALSE(dag0.empty());
  for (ServerId s = 1; s < n; ++s) {
    EXPECT_EQ(runtime.dag_digest(s), dag0) << "server " << s;
    EXPECT_EQ(runtime.interpretation_digest(s), interp0) << "server " << s;
  }

  // BRB totality at quiesce: every broadcast delivered at every server.
  for (ServerId s = 0; s < n; ++s) {
    EXPECT_EQ(runtime.indicated_count(1 + s), n) << "label " << 1 + s;
  }
  EXPECT_GT(runtime.total_blocks_inserted(), 0u);
  // Blocks crossed real wires: the loopback transport counted them.
  EXPECT_GT(runtime.wire_metrics().messages[static_cast<std::size_t>(WireKind::kBlock)], 0u);
}

TEST(ThreadedRuntime, ConcurrentRequestBurstAllDelivered) {
  // Heavier cross-thread traffic: many labels, requests landing on every
  // server while every server is disseminating. Exercises the mailbox
  // producer side from n+1 threads simultaneously.
  brb::BrbFactory factory;
  const std::uint32_t n = 7;
  constexpr std::uint32_t kLabels = 20;
  ThreadedRuntime runtime(factory, fast_config(n));
  runtime.start();

  for (std::uint32_t i = 0; i < kLabels; ++i) {
    runtime.request(i % n, 100 + i, brb::make_broadcast(Bytes{
                                        static_cast<std::uint8_t>(i), 0xab}));
  }

  ASSERT_TRUE(runtime.quiesce_and_converge());
  for (std::uint32_t i = 0; i < kLabels; ++i) {
    EXPECT_EQ(runtime.indicated_count(100 + i), n) << "label " << 100 + i;
  }
  const Bytes interp0 = runtime.interpretation_digest(0);
  for (ServerId s = 1; s < n; ++s) {
    EXPECT_EQ(runtime.interpretation_digest(s), interp0) << "server " << s;
  }
}

TEST(ThreadedRuntime, FifoOrderPreservedAcrossThreads) {
  // FIFO-BRB on the threaded runtime: per-sender delivery order is a
  // protocol property (carried inside blocks), so thread scheduling must
  // not be able to break it.
  fifo::FifoBrbFactory factory;
  const std::uint32_t n = 4;
  ThreadedRuntime runtime(factory, fast_config(n));
  runtime.start();

  constexpr int kMessages = 5;
  for (int i = 0; i < kMessages; ++i) {
    runtime.request(0, 1, fifo::make_broadcast(Bytes{static_cast<std::uint8_t>(i)}));
  }
  ASSERT_TRUE(runtime.quiesce_and_converge());

  for (ServerId s = 0; s < n; ++s) {
    const auto payloads = runtime.call(s, [](Shim& shim) {
      std::vector<Bytes> out;
      for (const UserIndication& ind : shim.indications()) {
        if (ind.label == 1) out.push_back(ind.indication);
      }
      return out;
    });
    ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kMessages)) << "server " << s;
    for (int i = 0; i < kMessages; ++i) {
      const auto delivered = fifo::parse_deliver(payloads[i]);
      ASSERT_TRUE(delivered.has_value());
      EXPECT_EQ(delivered->value, Bytes{static_cast<std::uint8_t>(i)})
          << "server " << s << " position " << i;
    }
  }
}

TEST(ThreadedRuntime, StopAndShutdownAreClean) {
  // Start, inject, shut down without converging: no hangs, no leaks (Asan
  // covers leaks; Tsan covers teardown races against in-flight timers).
  brb::BrbFactory factory;
  ThreadedRuntime runtime(factory, fast_config(4));
  runtime.start();
  runtime.request(0, 1, brb::make_broadcast(Bytes{1}));
  runtime.stop();
  runtime.shutdown();  // idempotent with the destructor's shutdown
}

}  // namespace
}  // namespace blockdag
