// Crash/restart fault injection on the threaded runtime (DESIGN.md §10).
//
// The durability claim under test: a server SIGKILLed mid-run (modelled by
// ThreadedRuntime::crash — the shim halts in place, exactly the state the
// kernel leaves behind) and restarted over the same storage sink resumes
// from its newest checkpoint + block log WITHOUT re-interpreting
// checkpointed history, state-syncs what it missed while down, and
// converges back to the identical Lemma 3.7 joint DAG and Lemma 4.2
// interpretation digests. A fresh late joiner — no durable state at all —
// catches up purely via state sync. Corrupt storage is refused cleanly:
// the incarnation stays halted instead of running half-restored.
//
// Run under ThreadSanitizer in CI: restart() re-attaches transport
// handlers and remounts timers while poll threads and peers keep running.
#include "rt/threaded_runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "protocols/brb.h"
#include "sync/storage.h"

namespace blockdag {
namespace {

using rt::ThreadedConfig;
using rt::ThreadedRuntime;

ThreadedConfig recovery_config(std::uint32_t n) {
  ThreadedConfig cfg;
  cfg.n_servers = n;
  cfg.pacing.interval = sim_ms(2);
  cfg.gossip.fwd_retry_delay = sim_ms(5);
  cfg.seed = 7;
  cfg.checkpoint.epoch_blocks = 4;  // frequent epochs: exercise GC + rotation
  cfg.enable_state_sync = true;
  cfg.sync.progress_timeout = sim_ms(50);
  cfg.sync.retry_base = sim_ms(10);
  return cfg;
}

// Polls `cond` (which may issue runtime calls) until true or ~10s passed.
template <typename F>
bool eventually(F&& cond) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

void expect_all_digests_equal(ThreadedRuntime& runtime, std::uint32_t n) {
  const Bytes dag0 = runtime.dag_digest(0);
  const Bytes interp0 = runtime.interpretation_digest(0);
  EXPECT_FALSE(dag0.empty());
  for (ServerId s = 1; s < n; ++s) {
    EXPECT_EQ(runtime.dag_digest(s), dag0) << "server " << s;
    EXPECT_EQ(runtime.interpretation_digest(s), interp0) << "server " << s;
  }
}

void run_crash_restart(ThreadedConfig cfg) {
  brb::BrbFactory factory;
  const std::uint32_t n = cfg.n_servers;
  const ServerId kVictim = n - 1;
  std::vector<sync::MemStore> stores(n);
  cfg.storage = [&stores](ServerId s) { return &stores[s]; };

  ThreadedRuntime runtime(factory, cfg);
  ASSERT_TRUE(runtime.transport_ok());
  ASSERT_TRUE(runtime.restore_failures().empty());
  runtime.start();

  // Phase 1: traffic until the victim has stored at least two checkpoint
  // epochs (so restore genuinely starts from a checkpoint, not genesis,
  // and log rotation has happened at least once). Requests go to the
  // survivors only: one injected into the victim right before the crash
  // would die with it — correct crash semantics (clients retry), but not
  // what the totality assertion below is about.
  std::uint32_t label = 0;
  ASSERT_TRUE(eventually([&] {
    runtime.request(label % (n - 1), 100 + label,
                    brb::make_broadcast(Bytes{static_cast<std::uint8_t>(label)}));
    ++label;
    return runtime.sync_snapshot(kVictim).checkpointer.checkpoints_stored >= 2;
  })) << "no checkpoints after " << label << " requests";

  // Phase 2: kill the victim; survivors keep building history it misses.
  runtime.crash(kVictim);
  for (int i = 0; i < 20; ++i) {
    runtime.request(i % (n - 1), 500 + i,
                    brb::make_broadcast(Bytes{0xcc, static_cast<std::uint8_t>(i)}));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Phase 3: restart over the same storage sink. Restore must succeed and
  // state sync must complete (it retries with backoff until it does).
  ASSERT_TRUE(runtime.restart(kVictim));
  ASSERT_TRUE(eventually(
      [&] { return runtime.sync_snapshot(kVictim).sync_completed; }));

  ASSERT_TRUE(runtime.quiesce_and_converge());
  expect_all_digests_equal(runtime, n);

  // The recovery really came from the checkpoint + sync, not a full
  // replay: checkpointed blocks were restored pre-interpreted, so the
  // victim's interpreter ran on strictly fewer blocks than a server that
  // lived through the whole run.
  const auto victim = runtime.sync_snapshot(kVictim);
  EXPECT_TRUE(victim.restore.restored);
  EXPECT_GT(victim.restore.blocks_from_checkpoint, 0u);
  EXPECT_GE(victim.sync.completions, 1u);
  const auto survivor = runtime.sync_snapshot(0);
  EXPECT_LT(victim.blocks_interpreted, survivor.blocks_interpreted)
      << "restart re-interpreted checkpointed history";

  // BRB totality survives the crash: every broadcast (including those sent
  // while the victim was down) is delivered everywhere.
  for (std::uint32_t i = 0; i < label; ++i) {
    EXPECT_EQ(runtime.indicated_count(100 + i), n) << "label " << 100 + i;
  }
}

TEST(CrashRestart, RestoresFromCheckpointAndSyncsOnThreads) {
  run_crash_restart(recovery_config(4));
}

TEST(CrashRestart, RestoresFromCheckpointAndSyncsOnTcp) {
  ThreadedConfig cfg = recovery_config(4);
  cfg.backend = rt::TransportBackend::kTcp;  // ephemeral in-process ports
  run_crash_restart(cfg);
}

TEST(CrashRestart, FreshLateJoinerSyncsFromPeers) {
  brb::BrbFactory factory;
  const std::uint32_t n = 4;
  const ServerId kJoiner = 3;
  ThreadedConfig cfg = recovery_config(n);
  std::vector<sync::MemStore> stores(n);
  cfg.storage = [&stores](ServerId s) { return &stores[s]; };
  ThreadedRuntime runtime(factory, cfg);
  runtime.start();
  // The joiner is down from the first beat: it never disseminates, so it
  // has no tip anywhere and no peer GCs — the full DAG stays syncable.
  runtime.crash(kJoiner);

  for (int i = 0; i < 12; ++i) {
    runtime.request(i % (n - 1), 1 + i,
                    brb::make_broadcast(Bytes{static_cast<std::uint8_t>(i)}));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the survivors build some history before the joiner appears.
  ASSERT_TRUE(eventually([&] {
    return runtime.call(ServerId{0}, [](Shim& shim) {
             return shim.gossip().stats().blocks_inserted;
           }) > 10;
  }));

  ASSERT_TRUE(runtime.restart(kJoiner));  // empty store: restore is a no-op
  ASSERT_TRUE(eventually(
      [&] { return runtime.sync_snapshot(kJoiner).sync_completed; }));
  const bool quiesced = runtime.quiesce_and_converge();
  if (!quiesced) {
    for (ServerId s = 0; s < n; ++s) {
      runtime.call(s, [s](Shim& shim) {
        const auto& g = shim.gossip().stats();
        fprintf(stderr,
                "server %u: dag=%zu pending=%zu fwd_sent=%llu replies=%llu "
                "inserted=%llu pruned=%llu\n",
                s, shim.dag().size(), shim.gossip().pending_blocks(),
                (unsigned long long)g.fwd_requests_sent,
                (unsigned long long)g.fwd_replies_sent,
                (unsigned long long)g.blocks_inserted,
                (unsigned long long)g.blocks_pruned);
      });
    }
  }
  ASSERT_TRUE(quiesced);
  expect_all_digests_equal(runtime, n);

  const auto joiner = runtime.sync_snapshot(kJoiner);
  EXPECT_FALSE(joiner.restore.restored) << "there was nothing on disk";
  EXPECT_GE(joiner.sync.completions, 1u);
  EXPECT_GT(joiner.sync.blocks_added, 0u) << "sync delivered no blocks";
}

TEST(CrashRestart, WindowedSyncAcrossMismatchedChunkConfigs) {
  // Two review-driven properties of the transfer protocol in one run:
  // (1) chunk geometry rides in the manifest, so a provider configured
  // with a different chunk_bytes than the requester still syncs (before
  // the fix every manifest was rejected as "absurd" and sync rotated
  // forever); (2) the provider sends at most chunks_per_request chunks
  // per request and the requester pulls window after window, so a
  // payload this size takes several requests, never one full-DAG burst.
  brb::BrbFactory factory;
  const std::uint32_t n = 3;
  const ServerId kJoiner = 2;
  ThreadedConfig cfg = recovery_config(n);
  cfg.sync.chunk_bytes = 64;        // requester's own (unused) geometry
  cfg.sync.chunks_per_request = 2;  // tiny windows: force many rounds
  cfg.sync_tweak = [](ServerId s, sync::SyncConfig& c) {
    if (s != kJoiner) c.chunk_bytes = 96;  // providers slice differently
  };
  std::vector<sync::MemStore> stores(n);
  cfg.storage = [&stores](ServerId s) { return &stores[s]; };
  ThreadedRuntime runtime(factory, cfg);
  runtime.start();
  runtime.crash(kJoiner);  // fresh late joiner: syncs the full DAG

  for (int i = 0; i < 12; ++i) {
    runtime.request(i % (n - 1), 1 + i,
                    brb::make_broadcast(Bytes{static_cast<std::uint8_t>(i)}));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(eventually([&] {
    return runtime.call(ServerId{0}, [](Shim& shim) {
             return shim.gossip().stats().blocks_inserted;
           }) > 10;
  }));

  ASSERT_TRUE(runtime.restart(kJoiner));
  ASSERT_TRUE(eventually(
      [&] { return runtime.sync_snapshot(kJoiner).sync_completed; }));
  ASSERT_TRUE(runtime.quiesce_and_converge());
  expect_all_digests_equal(runtime, n);

  const auto joiner = runtime.sync_snapshot(kJoiner);
  EXPECT_GE(joiner.sync.completions, 1u);
  EXPECT_GT(joiner.sync.chunks_received, 2u)
      << "payload should span more than one 2-chunk window";
  EXPECT_GT(joiner.sync.requests_sent, 1u)
      << "a windowed transfer takes one request per window";
}

TEST(CrashRestart, CorruptStorageRefusedAtConstructionAndRestart) {
  brb::BrbFactory factory;
  const std::uint32_t n = 2;
  std::vector<sync::MemStore> stores(n);
  // Garbage that passes no decode stage: load_latest succeeds (MemStore
  // has no CRC layer of its own) but the checkpoint refuses to decode.
  stores[1].store_checkpoint(1, Bytes{0xde, 0xad, 0xbe, 0xef});

  ThreadedConfig cfg = recovery_config(n);
  cfg.storage = [&stores](ServerId s) { return &stores[s]; };
  ThreadedRuntime runtime(factory, cfg);
  ASSERT_EQ(runtime.restore_failures().size(), 1u);
  EXPECT_EQ(runtime.restore_failures()[0], ServerId{1});

  // A restart over the same corrupt sink fails the same way, and the
  // incarnation stays halted rather than running half-restored.
  EXPECT_FALSE(runtime.restart(ServerId{1}));
  runtime.shutdown();
}

}  // namespace
}  // namespace blockdag
