// The protocol stack over lossy UDP sockets (rt/udp_transport.h).
//
// The acceptance property of the fourth Transport backend — and the most
// adversarial one: the same sans-io Shim/GossipServer/Interpreter code,
// now on real datagram sockets with the in-path fault injector actively
// dropping, reordering and duplicating wire traffic, still satisfies the
// paper's convergence claims — identical joint DAG everywhere (Lemma
// 3.7), identical digest_of interpretation of every block (Lemma 4.2),
// BRB totality, per-sender FIFO. The userspace reliability layer
// (net/datagram.h) is what closes the gap, and every test asserts its
// counters moved: injected losses really happened AND retransmission
// really recovered them — a silent no-op of either side fails the test.
// Run under ThreadSanitizer in CI (BUILDING.md).
//
// Ephemeral ports (base_port = 0) keep parallel ctest runs collision-free.
#include "rt/udp_transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "protocols/brb.h"
#include "protocols/fifo_brb.h"
#include "rt/threaded_runtime.h"

namespace blockdag {
namespace {

using rt::LinkFault;
using rt::ThreadedConfig;
using rt::ThreadedRuntime;
using rt::TransportBackend;

ThreadedConfig udp_config(std::uint32_t n) {
  ThreadedConfig cfg;
  cfg.n_servers = n;
  cfg.pacing.interval = sim_ms(2);         // 2ms real-time beats
  cfg.gossip.fwd_retry_delay = sim_ms(5);  // quick FWD recovery
  cfg.seed = 11;
  cfg.backend = TransportBackend::kUdp;    // base_port 0: ephemeral
  cfg.udp.fault_seed = 77;
  // Aggressive recovery so injected loss costs milliseconds, not the
  // default human-scale RTOs.
  cfg.udp.channel.initial_rto_ns = 5'000'000;
  cfg.udp.channel.max_rto_ns = 80'000'000;
  return cfg;
}

void expect_identical_digests(ThreadedRuntime& runtime, std::uint32_t n) {
  // Lemma 3.7: identical joint DAG everywhere; Lemma 4.2: identical
  // interpretation of every block everywhere.
  const Bytes dag0 = runtime.dag_digest(0);
  const Bytes interp0 = runtime.interpretation_digest(0);
  EXPECT_FALSE(dag0.empty());
  for (ServerId s = 1; s < n; ++s) {
    EXPECT_EQ(runtime.dag_digest(s), dag0) << "server " << s;
    EXPECT_EQ(runtime.interpretation_digest(s), interp0) << "server " << s;
  }
}

TEST(UdpRuntime, ConvergesUnderSeededLossReorderAndDuplication) {
  brb::BrbFactory factory;
  const std::uint32_t n = 4;
  ThreadedConfig cfg = udp_config(n);
  // Every directed link hostile from the first datagram: 20% loss plus
  // reordering and duplication. Applies to data and acks alike.
  cfg.udp.default_fault.drop = 0.20;
  cfg.udp.default_fault.reorder = 0.25;
  cfg.udp.default_fault.duplicate = 0.10;
  ThreadedRuntime runtime(factory, cfg);
  ASSERT_NE(runtime.udp(), nullptr);
  ASSERT_TRUE(runtime.udp()->ok());
  runtime.start();

  for (ServerId s = 0; s < n; ++s) {
    runtime.request(s, 1 + s,
                    brb::make_broadcast(Bytes{static_cast<std::uint8_t>(s)}));
  }

  // Note: the faults stay active through convergence — retransmission,
  // not healing, is what closes the DAGs.
  ASSERT_TRUE(runtime.quiesce_and_converge());
  expect_identical_digests(runtime, n);

  // BRB totality at quiesce: every broadcast delivered at every server.
  for (ServerId s = 0; s < n; ++s) {
    EXPECT_EQ(runtime.indicated_count(1 + s), n) << "label " << 1 + s;
  }
  EXPECT_GT(runtime.total_blocks_inserted(), 0u);

  // The adversary really acted and the reliability layer really answered:
  // datagrams were dropped/duplicated in path, RTOs expired and re-sent,
  // the dedup window absorbed the duplicates, and none of it corrupted a
  // frame stream.
  const rt::UdpStats stats = runtime.udp()->stats();
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_GT(stats.frames_received, 0u);
  EXPECT_GT(stats.acks_received, 0u);
  EXPECT_GT(stats.injected_drops, 0u);
  EXPECT_GT(stats.injected_dups, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.corrupt_streams, 0u);
  EXPECT_EQ(stats.malformed_dropped, 0u);
  EXPECT_GT(runtime.wire_metrics().messages[static_cast<std::size_t>(WireKind::kBlock)],
            0u);

  // Per-peer accounting (the TcpStats pattern, per directed link): every
  // link carried traffic, and the aggregate equals the sum of its parts.
  std::uint64_t link_retransmits = 0;
  std::uint64_t link_drops = 0;
  for (ServerId a = 0; a < n; ++a) {
    for (ServerId b = 0; b < n; ++b) {
      if (a == b) continue;
      const rt::UdpLinkStats link = runtime.udp()->link_stats(a, b);
      EXPECT_GT(link.datagrams_sent, 0u) << "link " << a << "→" << b;
      EXPECT_GT(link.chunks_delivered, 0u) << "link " << a << "→" << b;
      link_retransmits += link.retransmits;
      link_drops += link.injected_drops;
    }
  }
  EXPECT_EQ(link_retransmits, stats.retransmits);
  EXPECT_EQ(link_drops, stats.injected_drops);
  EXPECT_GT(link_retransmits, 0u);
}

TEST(UdpRuntime, FifoOrderPreservedAcrossDuplicatedAndReorderedDatagrams) {
  // Per-sender FIFO is carried inside blocks; duplicated and reordered
  // datagrams must be absorbed by the channel layer (dedup window +
  // in-order delivery into the FrameDecoder) before the protocol ever
  // sees a payload — so order survives an actively hostile wire.
  fifo::FifoBrbFactory factory;
  const std::uint32_t n = 4;
  ThreadedConfig cfg = udp_config(n);
  cfg.udp.default_fault.duplicate = 0.35;
  cfg.udp.default_fault.reorder = 0.35;
  cfg.udp.default_fault.delay_min_us = 100;
  cfg.udp.default_fault.delay_max_us = 2000;
  ThreadedRuntime runtime(factory, cfg);
  ASSERT_TRUE(runtime.udp()->ok());
  runtime.start();

  constexpr int kMessages = 5;
  for (int i = 0; i < kMessages; ++i) {
    runtime.request(0, 1, fifo::make_broadcast(Bytes{static_cast<std::uint8_t>(i)}));
  }
  ASSERT_TRUE(runtime.quiesce_and_converge());

  for (ServerId s = 0; s < n; ++s) {
    const auto payloads = runtime.call(s, [](Shim& shim) {
      std::vector<Bytes> out;
      for (const UserIndication& ind : shim.indications()) {
        if (ind.label == 1) out.push_back(ind.indication);
      }
      return out;
    });
    ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kMessages)) << "server " << s;
    for (int i = 0; i < kMessages; ++i) {
      const auto delivered = fifo::parse_deliver(payloads[i]);
      ASSERT_TRUE(delivered.has_value());
      EXPECT_EQ(delivered->value, Bytes{static_cast<std::uint8_t>(i)})
          << "server " << s << " position " << i;
    }
  }

  // Duplication really exercised the dedup window.
  const rt::UdpStats stats = runtime.udp()->stats();
  EXPECT_GT(stats.injected_dups, 0u);
  EXPECT_GT(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.corrupt_streams, 0u);
}

TEST(UdpRuntime, BlackholeAndHealConvergesViaResetAndFwdRecovery) {
  // The datagram analogue of a TCP connection kill, held long enough to
  // exhaust the retransmit budget: server 0 is partitioned away mid-run,
  // its channels reset (epoch bump, queued frames dropped — transient
  // loss), and after healing the gossip FWD path must still converge the
  // cluster. This is the delivery-contract boundary: what dies in a
  // blackholed channel is exactly what dies in a dead TCP kernel buffer.
  brb::BrbFactory factory;
  const std::uint32_t n = 4;
  ThreadedConfig cfg = udp_config(n);
  cfg.udp.channel.max_retransmits = 4;  // reset after ~5+10+20+40ms of silence
  ThreadedRuntime runtime(factory, cfg);
  ASSERT_TRUE(runtime.udp()->ok());
  runtime.start();

  // Phase 1: clean traffic on all links.
  runtime.request(0, 1, brb::make_broadcast(Bytes{0xa0}));
  runtime.request(1, 2, brb::make_broadcast(Bytes{0xa1}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Phase 2: cut server 0 off while dissemination beats keep landing on
  // its links, long enough that retransmit budgets exhaust and channels
  // reset with frames queued.
  runtime.udp()->set_partition({0}, {1, 2, 3}, true);
  for (int round = 0; round < 4; ++round) {
    runtime.request(round % n, 10 + round,
                    brb::make_broadcast(Bytes{static_cast<std::uint8_t>(round)}));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }

  // Phase 3: heal and converge.
  runtime.udp()->set_partition({0}, {1, 2, 3}, false);
  ASSERT_TRUE(runtime.quiesce_and_converge());
  expect_identical_digests(runtime, n);
  for (const Label label :
       {Label{1}, Label{2}, Label{10}, Label{11}, Label{12}, Label{13}}) {
    EXPECT_EQ(runtime.indicated_count(label), n) << "label " << label;
  }

  // The blackhole really swallowed datagrams and really broke channels —
  // recovery came from resets + FWD, not from luck.
  const rt::UdpStats stats = runtime.udp()->stats();
  EXPECT_GT(stats.injected_drops, 0u);
  EXPECT_GT(stats.channel_resets, 0u);
  EXPECT_GT(stats.retransmits, 0u);
}

TEST(UdpRuntime, StopAndShutdownAreCleanUnderActiveFaults) {
  // Start, inject under loss, shut down without converging: no hangs
  // (frames stuck in retransmission must be released to the idle
  // accounting on teardown), no leaks (Asan), no teardown races against
  // the poll thread (Tsan).
  brb::BrbFactory factory;
  ThreadedConfig cfg = udp_config(4);
  cfg.udp.default_fault.drop = 0.5;
  cfg.udp.default_fault.delay_min_us = 1000;
  cfg.udp.default_fault.delay_max_us = 5000;
  ThreadedRuntime runtime(factory, cfg);
  ASSERT_TRUE(runtime.udp()->ok());
  runtime.start();
  runtime.request(0, 1, brb::make_broadcast(Bytes{1}));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  runtime.stop();
  runtime.shutdown();  // idempotent with the destructor's shutdown
}

TEST(UdpRuntime, BindFailureIsReportedNotFatal) {
  // Two clusters on the same fixed base port: the second must report the
  // bind failure through ok() so a driver can pick another port.
  brb::BrbFactory factory;
  ThreadedConfig first = udp_config(2);
  first.udp.base_port = 0;
  ThreadedRuntime a(factory, first);
  ASSERT_TRUE(a.udp()->ok());

  ThreadedConfig second = udp_config(2);
  second.udp.base_port = a.udp()->port_of(0);  // already taken by `a`
  ThreadedRuntime b(factory, second);
  EXPECT_FALSE(b.udp()->ok());
}

}  // namespace
}  // namespace blockdag
