// Mailbox batch-drain (pop_all) — the DESIGN.md §13 contract.
//
// What must hold, precisely because the batched node loop replaces one
// condvar round per task with one per queue swap:
//   * per-sender FIFO survives the swap: with several producers pushing
//     concurrently, each producer's tasks still run in its push order;
//   * the IdleTracker stays non-zero from push until task_done(n) — the
//     consumer releases a batch's work units only after running (and
//     flushing) the whole batch, so count()==0 remains a true quiescent
//     point even mid-batch;
//   * close() drains: tasks pushed before close still come out, and
//     pop_all returns false exactly once the queue is closed AND empty.
// Runs under ThreadSanitizer in CI next to the verifier-pool test.
#include "rt/mailbox.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace blockdag::rt {
namespace {

TEST(MailboxBatch, PerProducerFifoAcrossBatchDrains) {
  IdleTracker idle;
  Mailbox mailbox(idle);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;

  // Consumer records (producer, seq) in execution order.
  std::vector<std::vector<int>> seen(kProducers);
  std::thread consumer([&] {
    std::deque<Mailbox::Task> batch;
    while (mailbox.pop_all(batch)) {
      const std::uint64_t n = batch.size();
      for (Mailbox::Task& task : batch) {
        task();
        task = nullptr;
      }
      batch.clear();
      mailbox.task_done(n);
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(mailbox.push([&seen, p, i] { seen[p].push_back(i); }));
        if (i % 256 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  mailbox.close();
  consumer.join();

  // Every producer's tasks ran, in that producer's push order — the batch
  // swap must not reorder within a sender even while four senders race.
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(seen[p].size(), static_cast<std::size_t>(kPerProducer))
        << "producer " << p;
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(seen[p][i], i) << "producer " << p << " slot " << i;
    }
  }
  EXPECT_EQ(idle.count(), 0u);
}

TEST(MailboxBatch, IdleTrackerHeldUntilWholeBatchDone) {
  IdleTracker idle;
  Mailbox mailbox(idle);

  // Pre-load a batch, then drain it on this thread so the test can probe
  // the tracker at exact points of the drain cycle.
  constexpr std::uint64_t kTasks = 8;
  std::uint64_t ran = 0;
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(mailbox.push([&ran] { ++ran; }));
  }
  ASSERT_EQ(idle.count(), kTasks);

  std::deque<Mailbox::Task> batch;
  ASSERT_TRUE(mailbox.pop_all(batch));
  ASSERT_EQ(batch.size(), kTasks);
  // Swapped out of the queue but not yet run: still outstanding work.
  EXPECT_EQ(idle.count(), kTasks);

  std::uint64_t done = 0;
  for (Mailbox::Task& task : batch) {
    task();
    task = nullptr;
    ++done;
    // Mid-batch, with some tasks run but their units unreleased, the
    // tracker must NOT read zero — a wait_idle() here would be a lie
    // (buffered egress from the already-run tasks could still be parked).
    EXPECT_EQ(idle.count(), kTasks) << "after task " << done;
  }
  EXPECT_EQ(ran, kTasks);

  mailbox.task_done(kTasks);
  EXPECT_EQ(idle.count(), 0u);
  EXPECT_TRUE(idle.wait_idle(std::chrono::milliseconds(100)));
}

TEST(MailboxBatch, CloseDrainsThenReturnsFalse) {
  IdleTracker idle;
  Mailbox mailbox(idle);
  int ran = 0;
  ASSERT_TRUE(mailbox.push([&ran] { ++ran; }));
  ASSERT_TRUE(mailbox.push([&ran] { ++ran; }));
  mailbox.close();
  EXPECT_FALSE(mailbox.push([&ran] { ++ran; }));  // closed: dropped

  std::deque<Mailbox::Task> batch;
  ASSERT_TRUE(mailbox.pop_all(batch));  // pre-close tasks still drain
  EXPECT_EQ(batch.size(), 2u);
  for (Mailbox::Task& task : batch) task();
  mailbox.task_done(batch.size());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(mailbox.pop_all(batch));  // closed AND empty: consumer exits
  EXPECT_EQ(idle.count(), 0u);
}

// Producers keep pushing while the consumer drains in batches and a
// watcher repeatedly waits for idle: when wait_idle returns true, all
// pushed tasks so far must actually have executed (no batch in flight).
TEST(MailboxBatch, WaitIdleNeverObservesHalfDrainedBatch) {
  IdleTracker idle;
  Mailbox mailbox(idle);

  std::atomic<std::uint64_t> executed{0};
  std::thread consumer([&] {
    std::deque<Mailbox::Task> batch;
    while (mailbox.pop_all(batch)) {
      const std::uint64_t n = batch.size();
      for (Mailbox::Task& task : batch) {
        task();
        task = nullptr;
      }
      batch.clear();
      mailbox.task_done(n);
    }
  });

  std::uint64_t pushed = 0;
  for (int round = 0; round < 200; ++round) {
    const int burst = 1 + round % 7;
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(mailbox.push([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
      ++pushed;
    }
    ASSERT_TRUE(idle.wait_idle(std::chrono::seconds(10)));
    // A true quiescent point: everything pushed has run to completion.
    ASSERT_EQ(executed.load(std::memory_order_relaxed), pushed);
  }
  mailbox.close();
  consumer.join();
}

}  // namespace
}  // namespace blockdag::rt
