// The protocol stack over real TCP sockets (rt/tcp_transport.h).
//
// The acceptance property of the third Transport backend: the same
// sans-io Shim/GossipServer/Interpreter code, now moved onto real
// localhost sockets — kernel buffering, stream fragmentation handled by
// net/frame.h, a dedicated poll thread posting complete frames into the
// per-server mailboxes — still satisfies the paper's convergence claims:
// identical joint DAG everywhere (Lemma 3.7), identical digest_of
// interpretation of every block (Lemma 4.2), BRB totality. Plus the
// failure mode sockets add that loopback cannot have: a connection dying
// mid-run loses whatever sat in kernel buffers, and the gossip FWD path
// (Algorithm 1 lines 10–13) must converge the cluster anyway. Run under
// ThreadSanitizer in CI (BUILDING.md).
//
// Ephemeral ports (base_port = 0) keep parallel ctest runs collision-free.
#include "rt/tcp_transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "protocols/brb.h"
#include "protocols/fifo_brb.h"
#include "rt/threaded_runtime.h"

namespace blockdag {
namespace {

using rt::ThreadedConfig;
using rt::ThreadedRuntime;
using rt::TransportBackend;

ThreadedConfig tcp_config(std::uint32_t n) {
  ThreadedConfig cfg;
  cfg.n_servers = n;
  cfg.pacing.interval = sim_ms(2);           // 2ms real-time beats
  cfg.gossip.fwd_retry_delay = sim_ms(5);    // quick FWD recovery
  cfg.seed = 11;
  cfg.backend = TransportBackend::kTcp;      // base_port 0: ephemeral
  return cfg;
}

void expect_identical_digests(ThreadedRuntime& runtime, std::uint32_t n) {
  // Lemma 3.7: identical joint DAG everywhere; Lemma 4.2: identical
  // interpretation of every block everywhere.
  const Bytes dag0 = runtime.dag_digest(0);
  const Bytes interp0 = runtime.interpretation_digest(0);
  EXPECT_FALSE(dag0.empty());
  for (ServerId s = 1; s < n; ++s) {
    EXPECT_EQ(runtime.dag_digest(s), dag0) << "server " << s;
    EXPECT_EQ(runtime.interpretation_digest(s), interp0) << "server " << s;
  }
}

TEST(TcpRuntime, ConvergesToIdenticalDagsAndInterpretationsOverSockets) {
  brb::BrbFactory factory;
  const std::uint32_t n = 4;
  ThreadedRuntime runtime(factory, tcp_config(n));
  ASSERT_NE(runtime.tcp(), nullptr);
  ASSERT_TRUE(runtime.tcp()->ok());
  runtime.start();

  for (ServerId s = 0; s < n; ++s) {
    runtime.request(s, 1 + s, brb::make_broadcast(Bytes{static_cast<std::uint8_t>(s)}));
  }

  ASSERT_TRUE(runtime.quiesce_and_converge());
  expect_identical_digests(runtime, n);

  // BRB totality at quiesce: every broadcast delivered at every server.
  for (ServerId s = 0; s < n; ++s) {
    EXPECT_EQ(runtime.indicated_count(1 + s), n) << "label " << 1 + s;
  }
  EXPECT_GT(runtime.total_blocks_inserted(), 0u);

  // The payloads really crossed sockets: frames were written, read back
  // and decoded, and n·(n−1) directed links were established.
  const rt::TcpStats stats = runtime.tcp()->stats();
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_GT(stats.frames_received, 0u);
  EXPECT_GE(stats.connects, static_cast<std::uint64_t>(n) * (n - 1));
  EXPECT_EQ(stats.corrupt_streams, 0u);
  EXPECT_GT(runtime.wire_metrics().messages[static_cast<std::size_t>(WireKind::kBlock)],
            0u);
}

TEST(TcpRuntime, FifoOrderPreservedOverSockets) {
  // Per-sender FIFO is carried inside blocks, so stream fragmentation and
  // socket scheduling must not be able to reorder deliveries.
  fifo::FifoBrbFactory factory;
  const std::uint32_t n = 4;
  ThreadedRuntime runtime(factory, tcp_config(n));
  ASSERT_TRUE(runtime.tcp()->ok());
  runtime.start();

  constexpr int kMessages = 5;
  for (int i = 0; i < kMessages; ++i) {
    runtime.request(0, 1, fifo::make_broadcast(Bytes{static_cast<std::uint8_t>(i)}));
  }
  ASSERT_TRUE(runtime.quiesce_and_converge());

  for (ServerId s = 0; s < n; ++s) {
    const auto payloads = runtime.call(s, [](Shim& shim) {
      std::vector<Bytes> out;
      for (const UserIndication& ind : shim.indications()) {
        if (ind.label == 1) out.push_back(ind.indication);
      }
      return out;
    });
    ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kMessages)) << "server " << s;
    for (int i = 0; i < kMessages; ++i) {
      const auto delivered = fifo::parse_deliver(payloads[i]);
      ASSERT_TRUE(delivered.has_value());
      EXPECT_EQ(delivered->value, Bytes{static_cast<std::uint8_t>(i)})
          << "server " << s << " position " << i;
    }
  }
}

TEST(TcpRuntime, ReconnectAfterConnectionKillConvergesViaFwdRecovery) {
  // The socket-only failure mode: a TCP connection dies mid-run. Bytes in
  // the dead kernel buffers are gone (transient loss, within Assumption
  // 1); the transport must re-dial, and blocks lost on the wire must come
  // back through the gossip FWD path once later blocks reference them.
  brb::BrbFactory factory;
  const std::uint32_t n = 3;
  ThreadedRuntime runtime(factory, tcp_config(n));
  ASSERT_TRUE(runtime.tcp()->ok());
  runtime.start();

  // Phase 1: traffic flowing on all links.
  runtime.request(0, 1, brb::make_broadcast(Bytes{0xa0}));
  runtime.request(1, 2, brb::make_broadcast(Bytes{0xa1}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Kill the 0↔1 link several times while dissemination beats keep
  // landing on it, so in-flight frames really die with it.
  for (int round = 0; round < 5; ++round) {
    runtime.tcp()->drop_connections(0, 1);
    runtime.request(round % n, 10 + round,
                    brb::make_broadcast(Bytes{static_cast<std::uint8_t>(round)}));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  ASSERT_TRUE(runtime.quiesce_and_converge());
  expect_identical_digests(runtime, n);
  for (const Label label : {Label{1}, Label{2}, Label{10}, Label{11}, Label{12},
                            Label{13}, Label{14}}) {
    EXPECT_EQ(runtime.indicated_count(label), n) << "label " << label;
  }

  // The kills really happened and the transport really re-dialed.
  const rt::TcpStats stats = runtime.tcp()->stats();
  EXPECT_GT(stats.resets, 0u);
  EXPECT_GT(stats.dials, static_cast<std::uint64_t>(n) * (n - 1))
      << "re-dials beyond the initial link establishment";
}

TEST(TcpRuntime, StopAndShutdownAreClean) {
  // Start, inject, shut down without converging: no hangs, no leaks (Asan
  // covers leaks; Tsan covers teardown races against the poll thread and
  // in-flight timers).
  brb::BrbFactory factory;
  ThreadedRuntime runtime(factory, tcp_config(4));
  ASSERT_TRUE(runtime.tcp()->ok());
  runtime.start();
  runtime.request(0, 1, brb::make_broadcast(Bytes{1}));
  runtime.stop();
  runtime.shutdown();  // idempotent with the destructor's shutdown
}

TEST(TcpRuntime, BindFailureIsReportedNotFatal) {
  // Two clusters on the same fixed base port: the second must report the
  // bind failure through ok() so a driver can pick another port.
  brb::BrbFactory factory;
  ThreadedConfig first = tcp_config(2);
  first.tcp.base_port = 0;
  ThreadedRuntime a(factory, first);
  ASSERT_TRUE(a.tcp()->ok());

  ThreadedConfig second = tcp_config(2);
  second.tcp.base_port = a.tcp()->port_of(0);  // already taken by `a`
  ThreadedRuntime b(factory, second);
  EXPECT_FALSE(b.tcp()->ok());
}

}  // namespace
}  // namespace blockdag
