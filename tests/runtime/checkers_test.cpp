// Checker self-tests: feed synthetic executions with planted violations and
// assert each checker reports *exactly* the planted violation — a checker
// that stays green on a violating execution (or drowns a real violation in
// false positives) would silently void the scenario engine that relies on
// it (DESIGN.md §6).
#include <gtest/gtest.h>

#include "runtime/checkers.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

bool mentions(const std::string& violation, const char* what) {
  return violation.find(what) != std::string::npos;
}

// ---- BrbChecker ----

TEST(BrbCheckerExact, CleanExecutionIsClean) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, val(7), true);
  for (ServerId s = 0; s < 3; ++s) checker.record_delivery(s, 1, val(7));
  EXPECT_TRUE(checker.violations({0, 1, 2}, /*run_completed=*/true).empty());
  EXPECT_EQ(checker.total_deliveries(), 3u);
}

TEST(BrbCheckerExact, PlantedDuplicateDelivery) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, val(7), true);
  for (ServerId s = 0; s < 3; ++s) checker.record_delivery(s, 1, val(7));
  checker.record_delivery(2, 1, val(7));  // planted: second delivery at 2
  const auto v = checker.violations({0, 1, 2}, true);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "no-duplication")) << v[0];
  EXPECT_TRUE(mentions(v[0], "server 2")) << v[0];
}

TEST(BrbCheckerExact, PlantedInconsistentValues) {
  BrbChecker checker;
  // Byzantine broadcaster (no integrity/validity clause), safety-only check.
  checker.expect_broadcast(1, 3, val(7), false);
  checker.record_delivery(0, 1, val(7));
  checker.record_delivery(1, 1, val(8));  // planted: different value
  const auto v = checker.violations({0, 1, 2}, /*run_completed=*/false);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "consistency")) << v[0];
}

TEST(BrbCheckerExact, PlantedMissingTotality) {
  BrbChecker checker;
  // Byzantine broadcaster: totality still binds once quiesced, validity
  // does not — so exactly the totality clause must fire.
  checker.expect_broadcast(1, 3, val(7), false);
  checker.record_delivery(0, 1, val(7));
  checker.record_delivery(1, 1, val(7));
  // planted: server 2 never delivers
  const auto v = checker.violations({0, 1, 2}, /*run_completed=*/true);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "totality")) << v[0];
  EXPECT_TRUE(mentions(v[0], "server 2")) << v[0];
}

TEST(BrbCheckerExact, PlantedValidityMiss) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, val(7), true);
  // planted: nobody delivers a correct broadcaster's value
  const auto v = checker.violations({0, 1}, /*run_completed=*/true);
  ASSERT_EQ(v.size(), 2u);  // one per correct server
  for (const auto& violation : v) {
    EXPECT_TRUE(mentions(violation, "validity")) << violation;
  }
}

TEST(BrbCheckerExact, PlantedIntegrityBreak) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, val(7), true);
  checker.record_delivery(1, 1, val(9));  // planted: value never broadcast
  const auto v = checker.violations({0, 1}, /*run_completed=*/false);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "integrity")) << v[0];
}

// ---- ConsensusChecker ----

TEST(ConsensusCheckerExact, CleanExecutionIsClean) {
  ConsensusChecker checker;
  checker.expect_proposal(1, 0, val(5));
  for (ServerId s = 0; s < 4; ++s) checker.record_decision(s, 1, val(5));
  EXPECT_TRUE(checker.violations({0, 1, 2, 3}, true).empty());
}

TEST(ConsensusCheckerExact, PlantedAgreementBreak) {
  ConsensusChecker checker;
  checker.expect_proposal(1, 0, val(5));
  checker.expect_proposal(1, 1, val(6));
  checker.record_decision(0, 1, val(5));
  checker.record_decision(1, 1, val(6));  // planted: different decision
  const auto v = checker.violations({0, 1}, /*expect_termination=*/true);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "agreement")) << v[0];
}

TEST(ConsensusCheckerExact, PlantedDoubleDecision) {
  ConsensusChecker checker;
  checker.expect_proposal(1, 0, val(5));
  checker.record_decision(0, 1, val(5));
  checker.record_decision(0, 1, val(5));  // planted: decided twice
  checker.record_decision(1, 1, val(5));
  const auto v = checker.violations({0, 1}, true);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "decided twice")) << v[0];
}

TEST(ConsensusCheckerExact, PlantedUnproposedDecision) {
  ConsensusChecker checker;
  checker.expect_proposal(1, 0, val(5));
  checker.record_decision(0, 1, val(9));  // planted: never proposed
  checker.record_decision(1, 1, val(9));
  const auto v = checker.violations({0, 1}, /*expect_termination=*/false);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "validity")) << v[0];
}

TEST(ConsensusCheckerExact, PlantedNonTermination) {
  ConsensusChecker checker;
  checker.expect_proposal(1, 0, val(5));
  checker.record_decision(0, 1, val(5));  // planted: server 1 undecided
  const auto v = checker.violations({0, 1}, /*expect_termination=*/true);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "termination")) << v[0];
  EXPECT_TRUE(mentions(v[0], "server 1")) << v[0];
}

// ---- FifoChecker ----

FifoChecker clean_fifo() {
  FifoChecker checker;
  for (std::uint8_t seq = 0; seq < 3; ++seq) {
    checker.expect_broadcast(1, 0, val(static_cast<std::uint8_t>(10 + seq)), true);
  }
  for (ServerId s = 0; s < 3; ++s) {
    for (std::uint8_t seq = 0; seq < 3; ++seq) {
      checker.record_delivery(s, 1, 0, seq, val(static_cast<std::uint8_t>(10 + seq)));
    }
  }
  return checker;
}

TEST(FifoCheckerExact, CleanStreamIsClean) {
  const FifoChecker checker = clean_fifo();
  EXPECT_TRUE(checker.violations({0, 1, 2}, /*run_completed=*/true).empty());
  EXPECT_EQ(checker.total_deliveries(), 9u);
}

TEST(FifoCheckerExact, CleanTwoOriginInterleaveIsClean) {
  FifoChecker checker;
  checker.expect_broadcast(1, 0, val(10), true);
  checker.expect_broadcast(1, 2, val(20), true);
  checker.expect_broadcast(1, 0, val(11), true);
  for (ServerId s = 0; s < 3; ++s) {
    checker.record_delivery(s, 1, 2, 0, val(20));
    checker.record_delivery(s, 1, 0, 0, val(10));
    checker.record_delivery(s, 1, 0, 1, val(11));
  }
  EXPECT_TRUE(checker.violations({0, 1, 2}, true).empty());
}

TEST(FifoCheckerExact, PlantedGap) {
  FifoChecker checker;
  checker.expect_broadcast(1, 0, val(10), true);
  checker.expect_broadcast(1, 0, val(11), true);
  checker.record_delivery(2, 1, 0, 1, val(11));  // planted: seq 1 before seq 0
  const auto v = checker.violations({0, 1, 2}, /*run_completed=*/false);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "fifo-order")) << v[0];
  EXPECT_TRUE(mentions(v[0], "expecting seq 0")) << v[0];
}

TEST(FifoCheckerExact, PlantedDuplicateSeq) {
  FifoChecker checker = clean_fifo();
  checker.record_delivery(1, 1, 0, 2, val(12));  // planted: seq 2 again
  // Safety-only check: the duplicate also inflates server 1's delivery
  // count, so the quiesced totality clause would (correctly) fire too.
  const auto v = checker.violations({0, 1, 2}, /*run_completed=*/false);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "no-duplication")) << v[0];
  EXPECT_TRUE(mentions(v[0], "server 1")) << v[0];
}

TEST(FifoCheckerExact, PlantedWrongValue) {
  FifoChecker checker;
  checker.expect_broadcast(1, 0, val(10), true);
  checker.record_delivery(0, 1, 0, 0, val(99));  // planted: value mismatch
  const auto v = checker.violations({0, 1}, /*run_completed=*/false);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "integrity")) << v[0];
}

TEST(FifoCheckerExact, PlantedDeliveryBeyondStream) {
  FifoChecker checker;
  checker.expect_broadcast(1, 0, val(10), true);
  checker.record_delivery(0, 1, 0, 0, val(10));
  checker.record_delivery(0, 1, 0, 1, val(11));  // planted: past the stream
  const auto v = checker.violations({0, 1}, /*run_completed=*/false);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "integrity")) << v[0];
  EXPECT_TRUE(mentions(v[0], "beyond")) << v[0];
}

TEST(FifoCheckerExact, PlantedInconsistentValues) {
  FifoChecker checker;
  // Byzantine origin (3, outside the correct set): safety must still hold.
  checker.record_delivery(0, 1, 3, 0, val(1));
  checker.record_delivery(1, 1, 3, 0, val(2));  // planted: disagreement
  const auto v = checker.violations({0, 1}, /*run_completed=*/false);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "consistency")) << v[0];
}

TEST(FifoCheckerExact, PlantedMissingTotality) {
  FifoChecker checker;
  checker.expect_broadcast(1, 3, val(1), false);  // byzantine origin
  checker.record_delivery(0, 1, 3, 0, val(1));
  // planted: server 1 never delivers the slot server 0 delivered
  const auto v = checker.violations({0, 1}, /*run_completed=*/true);
  ASSERT_EQ(v.size(), 1u) << v[0];
  EXPECT_TRUE(mentions(v[0], "totality")) << v[0];
  EXPECT_TRUE(mentions(v[0], "server 1")) << v[0];
}

TEST(FifoCheckerExact, PlantedValidityMiss) {
  FifoChecker checker;
  checker.expect_broadcast(1, 0, val(10), true);
  checker.expect_broadcast(1, 0, val(11), true);
  // planted: nobody delivers the correct origin's stream
  const auto v = checker.violations({0, 1}, /*run_completed=*/true);
  ASSERT_EQ(v.size(), 2u);  // one per correct server
  for (const auto& violation : v) {
    EXPECT_TRUE(mentions(violation, "validity")) << violation;
    EXPECT_TRUE(mentions(violation, "0 of 2")) << violation;
  }
}

TEST(FifoCheckerExact, PartialDeliveryIsCleanMidRun) {
  // A prefix of the stream delivered at some servers only is fine before
  // the run completes — liveness clauses must not fire early.
  FifoChecker checker;
  checker.expect_broadcast(1, 0, val(10), true);
  checker.expect_broadcast(1, 0, val(11), true);
  checker.record_delivery(0, 1, 0, 0, val(10));
  EXPECT_TRUE(checker.violations({0, 1}, /*run_completed=*/false).empty());
}

}  // namespace
}  // namespace blockdag
