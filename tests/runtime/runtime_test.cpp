// Runtime harness unit tests: request buffer, table printer, property
// checkers (including that they *do* flag violations), byzantine names,
// cluster plumbing.
#include <gtest/gtest.h>

#include "gossip/request_buffer.h"
#include "protocols/brb.h"
#include "runtime/checkers.h"
#include "runtime/cluster.h"
#include "runtime/table.h"

namespace blockdag {
namespace {

TEST(RequestBuffer, FifoAndBatching) {
  RequestBuffer buf;
  EXPECT_TRUE(buf.empty());
  for (std::uint8_t i = 0; i < 5; ++i) buf.put(i, Bytes{i});
  EXPECT_EQ(buf.size(), 5u);
  const auto first = buf.get(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].label, 0u);
  EXPECT_EQ(first[1].label, 1u);
  const auto rest = buf.get(100);
  EXPECT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[2].label, 4u);
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.get(10).empty());
}

TEST(Table, RendersAligned) {
  Table t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a  long header"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  // Short rows are padded to the header width.
  Table t2({"x", "y"});
  t2.add_row({"only"});
  EXPECT_NE(t2.render().find("only"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(42)), "42");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(BrbCheckerSelfTest, FlagsConsistencyViolation) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, Bytes{1}, true);
  checker.record_delivery(0, 1, Bytes{1});
  checker.record_delivery(1, 1, Bytes{2});  // different value!
  const auto v = checker.violations({0, 1, 2}, false);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("consistency"), std::string::npos);
}

TEST(BrbCheckerSelfTest, FlagsDuplication) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, Bytes{1}, true);
  checker.record_delivery(0, 1, Bytes{1});
  checker.record_delivery(0, 1, Bytes{1});  // twice!
  const auto v = checker.violations({0}, false);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("no-duplication"), std::string::npos);
}

TEST(BrbCheckerSelfTest, FlagsIntegrityViolation) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, Bytes{1}, true);
  checker.record_delivery(0, 1, Bytes{9});  // never broadcast
  const auto v = checker.violations({0}, false);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("integrity"), std::string::npos);
}

TEST(BrbCheckerSelfTest, FlagsTotalityAndValidityWhenComplete) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, Bytes{1}, true);
  checker.record_delivery(0, 1, Bytes{1});
  // Server 1 never delivered. Incomplete run: fine.
  EXPECT_TRUE(checker.violations({0, 1}, false).empty());
  // Completed run: totality + validity violated for server 1.
  const auto v = checker.violations({0, 1}, true);
  EXPECT_EQ(v.size(), 2u);
}

TEST(BrbCheckerSelfTest, ByzantineBroadcasterExemptFromIntegrity) {
  BrbChecker checker;
  checker.expect_broadcast(1, 3, Bytes{1}, /*broadcaster_correct=*/false);
  checker.record_delivery(0, 1, Bytes{7});
  checker.record_delivery(1, 1, Bytes{7});
  EXPECT_TRUE(checker.violations({0, 1}, false).empty());
}

TEST(BrbCheckerSelfTest, CleanRunPasses) {
  BrbChecker checker;
  checker.expect_broadcast(1, 0, Bytes{5}, true);
  for (ServerId s = 0; s < 4; ++s) checker.record_delivery(s, 1, Bytes{5});
  EXPECT_TRUE(checker.violations({0, 1, 2, 3}, true).empty());
  EXPECT_EQ(checker.total_deliveries(), 4u);
}

TEST(ConsensusCheckerSelfTest, FlagsDisagreement) {
  ConsensusChecker checker;
  checker.expect_proposal(1, 0, Bytes{1});
  checker.expect_proposal(1, 1, Bytes{2});
  checker.record_decision(0, 1, Bytes{1});
  checker.record_decision(1, 1, Bytes{2});
  const auto v = checker.violations({0, 1}, false);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("agreement"), std::string::npos);
}

TEST(ConsensusCheckerSelfTest, FlagsInventedValue) {
  ConsensusChecker checker;
  checker.expect_proposal(1, 0, Bytes{1});
  checker.record_decision(0, 1, Bytes{9});
  const auto v = checker.violations({0}, false);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("validity"), std::string::npos);
}

TEST(ConsensusCheckerSelfTest, FlagsNonTermination) {
  ConsensusChecker checker;
  checker.expect_proposal(1, 0, Bytes{1});
  const auto v = checker.violations({0}, /*expect_termination=*/true);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].find("termination"), std::string::npos);
}

TEST(ByzantineKinds, NamesAreStable) {
  EXPECT_STREQ(byzantine_kind_name(ByzantineKind::kSilent), "silent");
  EXPECT_STREQ(byzantine_kind_name(ByzantineKind::kEquivocator), "equivocator");
  EXPECT_STREQ(byzantine_kind_name(ByzantineKind::kFlooder), "flooder");
}

TEST(Cluster, CorrectServerBookkeeping) {
  ClusterConfig cfg;
  cfg.n_servers = 5;
  cfg.byzantine[1] = ByzantineKind::kSilent;
  cfg.byzantine[4] = ByzantineKind::kEquivocator;
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  EXPECT_EQ(cluster.correct_servers(), (std::vector<ServerId>{0, 2, 3}));
  EXPECT_EQ(cluster.n_correct(), 3u);
  EXPECT_TRUE(cluster.is_correct(0));
  EXPECT_FALSE(cluster.is_correct(1));
}

TEST(Cluster, StartIsIdempotent) {
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.pacing.interval = sim_ms(10);
  cfg.net.latency = {LatencyModel::Kind::kFixed, sim_ms(1), 0};
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.start();  // no double beats
  cluster.run_for(sim_ms(35));
  // 3 beats × 4 servers = 12 blocks, not 24.
  EXPECT_EQ(cluster.shim(0).dag().size(), 12u);
}

}  // namespace
}  // namespace blockdag
