// Differential testing across signature providers.
//
// The scheme choice (ideal | hmac | wots) must be invisible to the
// protocol: refs exclude sigma (Definition 3.1), the fault plan is derived
// before crypto ever runs, and honest signatures always verify — so the
// SAME seeded scenario must produce the byte-identical execution under all
// three providers. run_digest covers the whole run (joint DAG, Lemma 4.2
// interpretation digests, indication logs), making this a strong
// end-to-end differential: any provider that leaked into ordering, block
// content or delivery would split the digest.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "crypto/signature.h"
#include "runtime/scenario.h"

namespace blockdag {
namespace {

constexpr std::array<SigScheme, 3> kSchemes = {SigScheme::kIdeal,
                                               SigScheme::kHmac,
                                               SigScheme::kWots};

ScenarioResult run_with(const ScenarioConfig& base, SigScheme scheme) {
  ScenarioConfig cfg = base;
  cfg.sig_scheme = scheme;
  return run_scenario(cfg);
}

void expect_identical_across_schemes(const ScenarioConfig& base) {
  const ScenarioResult ideal = run_with(base, SigScheme::kIdeal);
  ASSERT_TRUE(ideal.ok()) << base.protocol << " seed " << base.seed << ": "
                          << ideal.violations.front();
  ASSERT_FALSE(ideal.run_digest.empty());
  for (SigScheme scheme : {SigScheme::kHmac, SigScheme::kWots}) {
    const ScenarioResult real = run_with(base, scheme);
    ASSERT_TRUE(real.ok()) << base.protocol << " seed " << base.seed << " sig "
                           << sig_scheme_name(scheme) << ": "
                           << real.violations.front();
    EXPECT_EQ(real.run_digest, ideal.run_digest)
        << base.protocol << " seed " << base.seed << " diverged under "
        << sig_scheme_name(scheme);
    EXPECT_EQ(real.blocks, ideal.blocks);
    EXPECT_EQ(real.deliveries, ideal.deliveries);
    EXPECT_EQ(real.labels_complete, ideal.labels_complete);
  }
}

TEST(ProviderDifferential, BrbScenarioDigestsMatch) {
  ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.protocol = "brb";
  cfg.instances = 4;
  expect_identical_across_schemes(cfg);
}

TEST(ProviderDifferential, PbftScenarioWithFaultsDigestsMatch) {
  // Byzantine assignment + crash churn come from the plan, which is derived
  // before any signature exists — the adversity schedule is scheme-blind.
  ScenarioConfig cfg;
  cfg.seed = 23;
  cfg.protocol = "pbft";
  cfg.instances = 4;
  expect_identical_across_schemes(cfg);
}

TEST(ProviderDifferential, BeaconScenarioDigestsMatch) {
  ScenarioConfig cfg;
  cfg.seed = 37;
  cfg.protocol = "beacon";
  cfg.instances = 3;
  expect_identical_across_schemes(cfg);
}

TEST(ProviderDifferential, HmacRoundTripAndIsolation) {
  const auto sigs = make_signature_provider(SigScheme::kHmac, 4, 99);
  const Bytes msg{1, 2, 3, 4, 5};
  const Bytes sigma = sigs->sign(2, msg);
  EXPECT_EQ(sigma.size(), 32u);
  EXPECT_TRUE(sigs->verify(2, msg, sigma));
  // Wrong signer, tampered message, tampered tag: all refused.
  EXPECT_FALSE(sigs->verify(1, msg, sigma));
  Bytes other = msg;
  other[0] ^= 1;
  EXPECT_FALSE(sigs->verify(2, other, sigma));
  Bytes cut = sigma;
  cut.pop_back();
  EXPECT_FALSE(sigs->verify(2, msg, cut));
  EXPECT_EQ(sigs->counters().signs, 1u);
  EXPECT_EQ(sigs->counters().verifies, 4u);

  // Separately-constructed providers with the same (scheme, n, seed) agree
  // — the property per-node instances on the threaded runtime rely on.
  const auto twin = make_signature_provider(SigScheme::kHmac, 4, 99);
  EXPECT_TRUE(twin->verify(2, msg, sigma));
  // ...and a different root seed yields disjoint key material.
  const auto stranger = make_signature_provider(SigScheme::kHmac, 4, 100);
  EXPECT_FALSE(stranger->verify(2, msg, sigma));
}

TEST(ProviderDifferential, SchemesRejectEachOthersSignatures) {
  // A signature minted under one scheme never verifies under another, even
  // with identical (n, seed) — no cross-scheme confusion is possible.
  const Bytes msg{9, 8, 7};
  std::array<std::unique_ptr<SignatureProvider>, 3> providers;
  std::array<Bytes, 3> sigmas;
  for (std::size_t i = 0; i < kSchemes.size(); ++i) {
    providers[i] = make_signature_provider(kSchemes[i], 4, 7);
    sigmas[i] = providers[i]->sign(1, msg);
    ASSERT_TRUE(providers[i]->verify(1, msg, sigmas[i]));
  }
  for (std::size_t a = 0; a < kSchemes.size(); ++a) {
    for (std::size_t b = 0; b < kSchemes.size(); ++b) {
      if (a == b) continue;
      EXPECT_FALSE(providers[a]->verify(1, msg, sigmas[b]))
          << sig_scheme_name(kSchemes[a]) << " accepted a "
          << sig_scheme_name(kSchemes[b]) << " signature";
    }
  }
}

}  // namespace
}  // namespace blockdag
