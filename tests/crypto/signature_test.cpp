#include "crypto/signature.h"

#include <gtest/gtest.h>

namespace blockdag {
namespace {

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(IdealSignature, SignVerifyRoundTrip) {
  IdealSignatureProvider sigs(4, 1);
  const Bytes m = msg("block ref");
  const Bytes sig = sigs.sign(2, m);
  EXPECT_TRUE(sigs.verify(2, m, sig));
}

TEST(IdealSignature, WrongSignerRejected) {
  IdealSignatureProvider sigs(4, 1);
  const Bytes m = msg("block ref");
  const Bytes sig = sigs.sign(2, m);
  EXPECT_FALSE(sigs.verify(1, m, sig));
  EXPECT_FALSE(sigs.verify(3, m, sig));
}

TEST(IdealSignature, WrongMessageRejected) {
  IdealSignatureProvider sigs(4, 1);
  const Bytes sig = sigs.sign(0, msg("a"));
  EXPECT_FALSE(sigs.verify(0, msg("b"), sig));
}

TEST(IdealSignature, TamperedSignatureRejected) {
  IdealSignatureProvider sigs(4, 1);
  const Bytes m = msg("a");
  Bytes sig = sigs.sign(0, m);
  sig[0] ^= 1;
  EXPECT_FALSE(sigs.verify(0, m, sig));
  sig[0] ^= 1;
  sig.pop_back();
  EXPECT_FALSE(sigs.verify(0, m, sig));  // truncated
}

TEST(IdealSignature, UnknownServerRejected) {
  IdealSignatureProvider sigs(4, 1);
  const Bytes m = msg("a");
  EXPECT_FALSE(sigs.verify(17, m, sigs.sign(0, m)));
}

TEST(IdealSignature, DeterministicAcrossInstances) {
  IdealSignatureProvider a(4, 99), b(4, 99);
  const Bytes m = msg("same seed, same signature");
  EXPECT_EQ(a.sign(1, m), b.sign(1, m));
}

TEST(IdealSignature, DifferentSeedsDisjoint) {
  IdealSignatureProvider a(4, 1), b(4, 2);
  const Bytes m = msg("x");
  EXPECT_FALSE(b.verify(0, m, a.sign(0, m)));
}

TEST(IdealSignature, CountersTrackOps) {
  IdealSignatureProvider sigs(4, 1);
  const Bytes m = msg("x");
  const Bytes sig = sigs.sign(0, m);
  (void)sigs.verify(0, m, sig);
  (void)sigs.verify(1, m, sig);
  EXPECT_EQ(sigs.counters().signs, 1u);
  EXPECT_EQ(sigs.counters().verifies, 2u);
  sigs.counters().reset();
  EXPECT_EQ(sigs.counters().signs, 0u);
}

}  // namespace
}  // namespace blockdag
