// VerifierPool: off-thread verification with mailbox-posted verdicts.
//
// The pool's whole contract is concurrency-shaped, so these tests run a
// REAL owner: an rt::Mailbox drained by its own consumer thread, with the
// rt::IdleTracker bridged through the WorkHook exactly as the threaded
// runtime wires it. Covered: verdicts that complete out of submission
// order, positive AND negative verdict caching, wait_idle() covering
// in-flight verifications, and a stop() racing a half-verified batch —
// the latter looped so Tsan gets repeated shots at the shutdown interleaving
// (CI runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "crypto/hash.h"
#include "crypto/verifier_pool.h"
#include "rt/mailbox.h"

namespace blockdag {
namespace {

// Deterministic provider with test-controlled latency: sigma[0] is the
// verdict, sigma[1] a delay in milliseconds the verify call sleeps for.
// No key material — the pool treats providers as black boxes.
class StubProvider final : public SignatureProvider {
 public:
  Bytes sign(ServerId signer, std::span<const std::uint8_t> message) override {
    ++counters_.signs;
    (void)signer;
    (void)message;
    return Bytes{1, 0};
  }
  bool verify(ServerId claimed, std::span<const std::uint8_t> message,
              std::span<const std::uint8_t> signature) override {
    ++counters_.verifies;
    (void)claimed;
    (void)message;
    if (signature.size() < 2) return false;
    if (signature[1] > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(signature[1]));
    return signature[0] == 1;
  }
};

Hash256 ref_of(std::uint8_t tag) {
  Bytes seed{tag};
  return Hash256::of(seed);
}

// One owner server: single consumer thread draining an MPSC mailbox, the
// same loop shape as ThreadedRuntime::node_loop.
struct Owner {
  rt::IdleTracker idle;
  rt::Mailbox mailbox;
  std::thread thread;

  Owner() : mailbox(idle), thread([this] {
    rt::Mailbox::Task task;
    while (mailbox.pop(task)) {
      task();
      mailbox.task_done();
    }
  }) {}

  ~Owner() { shutdown(); }

  bool post(std::function<void()> fn) { return mailbox.push(std::move(fn)); }

  // Runs `fn` on the owner thread and waits for it — the only sound way for
  // the test harness to touch owner-thread-only state (the Handle).
  void run_on_owner(std::function<void()> fn) {
    std::mutex mu;
    std::condition_variable cv;
    bool ran = false;
    ASSERT_TRUE(post([&] {
      fn();
      std::lock_guard<std::mutex> lock(mu);
      ran = true;
      cv.notify_one();
    }));
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ran; });
  }

  void shutdown() {
    mailbox.close();
    if (thread.joinable()) thread.join();
  }
};

struct PoolRig {
  Owner owner;
  // Verdicts recorded on the owner thread; mutex only so the main thread
  // can read them after wait_idle (the owner thread is still alive then).
  std::mutex mu;
  std::vector<std::pair<Hash256, bool>> verdicts;
  std::unique_ptr<VerifierPool::Handle> handle;
  VerifierPool pool;

  explicit PoolRig(VerifierPoolConfig cfg = {})
      : pool([] { return std::make_unique<StubProvider>(); }, cfg) {
    pool.start();
    handle = pool.make_handle(
        [this](std::function<void()> fn) { return owner.post(std::move(fn)); },
        [this](bool retain) { retain ? owner.idle.add() : owner.idle.sub(); });
  }

  // Teardown order matters: join the workers first (no new verdict posts),
  // then drain + join the owner (queued verdict tasks still touch `handle`
  // and `verdicts`, which must outlive the owner thread).
  ~PoolRig() {
    pool.stop();
    owner.shutdown();
  }

  // Submits from the owner thread (Handle methods are owner-thread-only).
  void submit(const Hash256& ref, Bytes sigma) {
    owner.run_on_owner([this, ref, sigma = std::move(sigma)]() mutable {
      handle->submit(3, ref, std::move(sigma), [this, ref](bool ok) {
        std::lock_guard<std::mutex> lock(mu);
        verdicts.emplace_back(ref, ok);
      });
    });
  }

  bool wait_idle_for(int ms) {
    return owner.idle.wait_idle(std::chrono::milliseconds(ms));
  }

  std::vector<std::pair<Hash256, bool>> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return verdicts;
  }
};

TEST(VerifierPool, OutOfOrderVerdictsAllPostBack) {
  VerifierPoolConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 1;  // one task per wakeup: the slow task blocks one worker
  PoolRig rig(cfg);

  // First submission is the slowest by far: with two workers the other
  // seven verdicts overtake it, so results post out of submission order
  // while every verdict still reaches the owner exactly once.
  rig.submit(ref_of(0), Bytes{1, 60});
  for (std::uint8_t i = 1; i < 8; ++i)
    rig.submit(ref_of(i), Bytes{static_cast<std::uint8_t>(i % 2), 0});
  ASSERT_TRUE(rig.wait_idle_for(10000));

  const auto got = rig.snapshot();
  ASSERT_EQ(got.size(), 8u);
  EXPECT_EQ(got.back().first, ref_of(0));  // slowest verdict lands last
  for (const auto& [ref, ok] : got) {
    bool expect = false;
    for (std::uint8_t i = 0; i < 8; ++i)
      if (ref == ref_of(i)) expect = (i == 0) || (i % 2 == 1);
    EXPECT_EQ(ok, expect);
  }
  rig.owner.run_on_owner([&] {
    EXPECT_EQ(rig.handle->stats().submitted, 8u);
    EXPECT_EQ(rig.handle->stats().results_posted, 8u);
    EXPECT_EQ(rig.handle->stats().cache_hits, 0u);
  });
  EXPECT_EQ(rig.pool.stats().verified, 8u);
  EXPECT_GE(rig.pool.stats().batches, 2u);  // both workers took work
}

TEST(VerifierPool, CachesPositiveAndNegativeVerdicts) {
  PoolRig rig;
  rig.submit(ref_of(10), Bytes{1, 0});  // valid
  rig.submit(ref_of(11), Bytes{0, 0});  // forged
  ASSERT_TRUE(rig.wait_idle_for(10000));
  ASSERT_EQ(rig.snapshot().size(), 2u);
  ASSERT_EQ(rig.pool.stats().verified, 2u);

  // Re-submissions — even with a DIFFERENT sigma, as a re-gossiped or
  // re-flooded block would carry — are answered inline from the cache,
  // keyed by ref: no worker runs, done() fires synchronously on the owner.
  rig.submit(ref_of(10), Bytes{0, 0});  // cache says valid regardless
  rig.submit(ref_of(11), Bytes{1, 0});  // cache says forged regardless
  const auto got = rig.snapshot();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_TRUE(got[2].second);
  EXPECT_FALSE(got[3].second);
  rig.owner.run_on_owner([&] {
    EXPECT_EQ(rig.handle->stats().cache_hits, 2u);
    EXPECT_EQ(rig.handle->stats().submitted, 2u);  // misses only
  });
  EXPECT_EQ(rig.pool.stats().verified, 2u);  // no new worker verifications
}

TEST(VerifierPool, CacheEvictsOldestFirst) {
  VerifierPoolConfig cfg;
  cfg.cache_capacity = 2;
  cfg.workers = 1;  // verdicts post in submit order ⇒ FIFO age is exact
  PoolRig rig(cfg);
  rig.submit(ref_of(20), Bytes{1, 0});
  rig.submit(ref_of(21), Bytes{1, 0});
  rig.submit(ref_of(22), Bytes{1, 0});  // evicts 20's verdict
  ASSERT_TRUE(rig.wait_idle_for(10000));

  rig.submit(ref_of(22), Bytes{1, 0});  // hit
  rig.submit(ref_of(20), Bytes{1, 0});  // miss: goes back to a worker
  ASSERT_TRUE(rig.wait_idle_for(10000));
  rig.owner.run_on_owner([&] {
    EXPECT_EQ(rig.handle->stats().cache_hits, 1u);
    EXPECT_EQ(rig.handle->stats().submitted, 4u);
  });
  EXPECT_EQ(rig.pool.stats().verified, 4u);
}

TEST(VerifierPool, WaitIdleCoversInFlightVerification) {
  PoolRig rig;
  // One slow verification: the mailbox drains immediately (the submit task
  // finishes) but the WorkHook keeps a unit retained until the verdict is
  // posted — so idle is NOT reached while the worker is still checking.
  rig.submit(ref_of(30), Bytes{1, 120});
  EXPECT_FALSE(rig.wait_idle_for(20));  // verification still in flight
  ASSERT_TRUE(rig.wait_idle_for(10000));
  ASSERT_EQ(rig.snapshot().size(), 1u);
  EXPECT_TRUE(rig.snapshot()[0].second);
  EXPECT_EQ(rig.owner.idle.count(), 0u);
}

TEST(VerifierPool, StopRacingHalfVerifiedBatchReleasesEveryUnit) {
  // Shutdown races a burst mid-verification, repeatedly: every submitted
  // task must either post its verdict or be dropped with its work unit
  // released — the tracker must always return to 0 and the accounting must
  // add up. Ten rounds give Tsan distinct interleavings.
  for (int round = 0; round < 10; ++round) {
    PoolRig rig;  // fresh owner + pool each round
    const int kTasks = 24;
    for (std::uint8_t i = 0; i < kTasks; ++i)
      rig.submit(ref_of(i), Bytes{1, static_cast<std::uint8_t>(i % 3)});
    // Let a prefix of the batch complete, then yank the pool.
    std::this_thread::sleep_for(std::chrono::milliseconds(round % 4));
    rig.pool.stop();
    ASSERT_TRUE(rig.wait_idle_for(10000)) << "round " << round;

    const VerifierPoolStats pool_stats = rig.pool.stats();
    rig.owner.run_on_owner([&] {
      const VerifierPoolStats& h = rig.handle->stats();
      EXPECT_EQ(h.submitted, static_cast<std::uint64_t>(kTasks));
      // Conservation: every task was either posted back or dropped.
      EXPECT_EQ(h.results_posted + pool_stats.dropped,
                static_cast<std::uint64_t>(kTasks))
          << "round " << round;
    });
    EXPECT_EQ(rig.snapshot().size() + pool_stats.dropped,
              static_cast<std::size_t>(kTasks));
    // (wait_idle, not count(): run_on_owner returns before the owner loop's
    // task_done, so the count is transiently 1 right after a posted task.)
    EXPECT_TRUE(rig.wait_idle_for(1000));

    // Submissions after stop() are dropped inline, never wedged.
    rig.submit(ref_of(200), Bytes{1, 0});
    EXPECT_TRUE(rig.wait_idle_for(1000));
    rig.owner.run_on_owner([&] {
      EXPECT_EQ(rig.handle->stats().results_posted + rig.pool.stats().dropped,
                static_cast<std::uint64_t>(kTasks) + 1);
    });
  }
}

TEST(VerifierPool, PerWorkerProvidersAreIndependent) {
  // The factory runs once per worker; a counting factory proves no provider
  // instance is shared across workers (wots' directory cache is unlocked).
  std::mutex mu;
  int built = 0;
  VerifierPoolConfig cfg;
  cfg.workers = 3;
  VerifierPool pool(
      [&]() -> std::unique_ptr<SignatureProvider> {
        std::lock_guard<std::mutex> lock(mu);
        ++built;
        return std::make_unique<StubProvider>();
      },
      cfg);
  pool.start();
  // Workers construct their provider on entry; poke them with work so all
  // three are definitely up before we count.
  Owner owner;
  auto handle = pool.make_handle(
      [&owner](std::function<void()> fn) { return owner.post(std::move(fn)); },
      [&owner](bool retain) { retain ? owner.idle.add() : owner.idle.sub(); });
  owner.run_on_owner([&] {
    for (std::uint8_t i = 0; i < 6; ++i)
      handle->submit(0, ref_of(i), Bytes{1, 5}, [](bool) {});
  });
  ASSERT_TRUE(owner.idle.wait_idle(std::chrono::seconds(10)));
  pool.stop();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(built, 3);
}

}  // namespace
}  // namespace blockdag
