#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace blockdag {
namespace {

std::string hex_digest(const Bytes& data) {
  return to_hex(Sha256::digest(data));
}

Bytes ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(ascii("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_digest(ascii("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Padding boundary cases: lengths around the 55/56/64-byte edges.
TEST(Sha256, PaddingBoundaries) {
  // 55 bytes: padding fits in one block.
  EXPECT_EQ(hex_digest(Bytes(55, 'x')),
            hex_digest(Bytes(55, 'x')));
  // 56 bytes: padding forces an extra block. Known answer for 56 zeros:
  EXPECT_EQ(hex_digest(Bytes(56, 0)),
            "d4817aa5497628e7c77e6b606107042bbba3130888c5f47a375e6179be789fbb");
  // 64 bytes exactly one block of zeros:
  EXPECT_EQ(hex_digest(Bytes(64, 0)),
            "f5a5fd42d16a20302798ef6ed309979b43003d2320d9f0e8ea9831a92759fb4b");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));

  for (const std::size_t chunk : {1u, 3u, 63u, 64u, 65u, 300u}) {
    Sha256 h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      const std::size_t len = std::min(chunk, data.size() - off);
      h.update(std::span(data.data() + off, len));
    }
    EXPECT_EQ(h.finalize(), Sha256::digest(data)) << "chunk=" << chunk;
  }
}

TEST(Sha256, SmallChangeChangesDigest) {
  Bytes a = ascii("the quick brown fox");
  Bytes b = a;
  b.back() ^= 1;
  EXPECT_NE(Sha256::digest(a), Sha256::digest(b));
}

}  // namespace
}  // namespace blockdag
