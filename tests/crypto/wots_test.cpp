#include "crypto/wots.h"

#include <gtest/gtest.h>

namespace blockdag {
namespace {

Bytes msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

Bytes seed(std::uint8_t fill) { return Bytes(32, fill); }

TEST(Wots, SignVerifyRoundTrip) {
  WotsKeychain chain(seed(7));
  const WotsPublicKey pk = chain.public_key(0);
  const Bytes m = msg("one-time message");
  const Bytes sig = chain.sign(0, m);
  EXPECT_TRUE(wots_verify(pk, m, sig));
}

TEST(Wots, WrongMessageRejected) {
  WotsKeychain chain(seed(7));
  const WotsPublicKey pk = chain.public_key(0);
  const Bytes sig = chain.sign(0, msg("a"));
  EXPECT_FALSE(wots_verify(pk, msg("b"), sig));
}

TEST(Wots, WrongIndexRejected) {
  WotsKeychain chain(seed(7));
  const Bytes m = msg("m");
  // Signature under key 0 does not verify under key 1's public key.
  EXPECT_FALSE(wots_verify(chain.public_key(1), m, chain.sign(0, m)));
}

TEST(Wots, TamperedSignatureRejected) {
  WotsKeychain chain(seed(9));
  const WotsPublicKey pk = chain.public_key(3);
  const Bytes m = msg("m");
  Bytes sig = chain.sign(3, m);
  sig[100] ^= 0xff;
  EXPECT_FALSE(wots_verify(pk, m, sig));
  sig[100] ^= 0xff;
  sig.resize(sig.size() - 1);
  EXPECT_FALSE(wots_verify(pk, m, sig));  // wrong length
}

TEST(Wots, DifferentSeedsDisjoint) {
  WotsKeychain a(seed(1)), b(seed(2));
  const Bytes m = msg("m");
  EXPECT_FALSE(wots_verify(b.public_key(0), m, a.sign(0, m)));
}

TEST(Wots, SignatureSizeIsLenTimesN) {
  WotsKeychain chain(seed(1));
  EXPECT_EQ(chain.sign(0, msg("m")).size(), WotsParams::kLen * WotsParams::kN);
}

TEST(WotsProvider, ProviderRoundTrip) {
  WotsSignatureProvider sigs(4, 5);
  const Bytes m = msg("block ref");
  const Bytes sig = sigs.sign(1, m);
  EXPECT_TRUE(sigs.verify(1, m, sig));
  EXPECT_FALSE(sigs.verify(2, m, sig));
}

TEST(WotsProvider, IndicesAdvancePerSigner) {
  WotsSignatureProvider sigs(2, 5);
  const Bytes m1 = msg("m1");
  const Bytes m2 = msg("m2");
  const Bytes s1 = sigs.sign(0, m1);
  const Bytes s2 = sigs.sign(0, m2);
  // Both verify: each under its own one-time key.
  EXPECT_TRUE(sigs.verify(0, m1, s1));
  EXPECT_TRUE(sigs.verify(0, m2, s2));
  // Cross-verification fails.
  EXPECT_FALSE(sigs.verify(0, m2, s1));
  EXPECT_FALSE(sigs.verify(0, m1, s2));
}

TEST(WotsProvider, MalformedSignatureRejected) {
  WotsSignatureProvider sigs(2, 5);
  EXPECT_FALSE(sigs.verify(0, msg("m"), Bytes{1, 2, 3}));
  EXPECT_FALSE(sigs.verify(0, msg("m"), Bytes{}));
}

TEST(WotsProvider, CountsOps) {
  WotsSignatureProvider sigs(2, 5);
  const Bytes m = msg("m");
  const Bytes s = sigs.sign(0, m);
  (void)sigs.verify(0, m, s);
  EXPECT_EQ(sigs.counters().signs, 1u);
  EXPECT_EQ(sigs.counters().verifies, 1u);
}

}  // namespace
}  // namespace blockdag
