#include "crypto/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace blockdag {
namespace {

TEST(Hash256, DefaultIsZero) {
  Hash256 h;
  EXPECT_TRUE(h.is_zero());
}

TEST(Hash256, OfBytesNotZero) {
  EXPECT_FALSE(Hash256::of(Bytes{1, 2, 3}).is_zero());
}

TEST(Hash256, EqualityAndOrdering) {
  const Hash256 a = Hash256::of(Bytes{1});
  const Hash256 b = Hash256::of(Bytes{2});
  const Hash256 a2 = Hash256::of(Bytes{1});
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);  // total order
}

TEST(Hash256, HexIs64Chars) {
  const Hash256 h = Hash256::of(Bytes{42});
  EXPECT_EQ(h.hex().size(), 64u);
  EXPECT_EQ(h.short_hex(), h.hex().substr(0, 8));
}

TEST(Hash256, UsableInHashContainers) {
  std::unordered_set<Hash256> set;
  for (std::uint8_t i = 0; i < 100; ++i) set.insert(Hash256::of(Bytes{i}));
  EXPECT_EQ(set.size(), 100u);
}

TEST(Hash256, Prefix64MatchesBytes) {
  const Hash256 h = Hash256::of(Bytes{1, 2, 3});
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(h.bytes()[i]) << (8 * i);
  EXPECT_EQ(h.prefix64(), v);
}

}  // namespace
}  // namespace blockdag
