#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace blockdag {
namespace {

Bytes ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, ascii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(ascii("Jefe"), ascii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// Keys longer than the block size are hashed first (RFC 4231 case 6).
TEST(Hmac, LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, ascii("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = ascii("message");
  EXPECT_NE(hmac_sha256(ascii("key1"), msg), hmac_sha256(ascii("key2"), msg));
}

TEST(Hmac, MessageSensitivity) {
  const Bytes key = ascii("key");
  EXPECT_NE(hmac_sha256(key, ascii("a")), hmac_sha256(key, ascii("b")));
}

}  // namespace
}  // namespace blockdag
