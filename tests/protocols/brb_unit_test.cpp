#include "protocols/brb.h"

#include <gtest/gtest.h>

#include "testing/local_net.h"
#include "util/serialize.h"

namespace blockdag {
namespace {

using testing::LocalNet;

Bytes val(std::uint8_t v) { return Bytes{v}; }

TEST(BrbUnit, EncodingRoundTrips) {
  EXPECT_EQ(brb::parse_broadcast(brb::make_broadcast(val(42))), val(42));
  EXPECT_EQ(brb::parse_deliver(brb::make_deliver(val(42))), val(42));
  EXPECT_FALSE(brb::parse_broadcast(Bytes{}).has_value());
  EXPECT_FALSE(brb::parse_broadcast(Bytes{99, 1, 2}).has_value());
  EXPECT_FALSE(brb::parse_deliver(brb::make_broadcast(val(1))).has_value());
}

TEST(BrbUnit, AllCorrectDeliver) {
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  net.request(0, brb::make_broadcast(val(42)));
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s)) << "server " << s;
    EXPECT_EQ(brb::parse_deliver(net.indications(s)[0]), val(42));
    EXPECT_EQ(net.indications(s).size(), 1u);  // no duplication
  }
}

TEST(BrbUnit, BroadcasterEchoesImmediately) {
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  net.request(0, brb::make_broadcast(val(7)));
  // 4 ECHO messages materialize immediately (one per receiver, incl. self).
  EXPECT_EQ(net.messages_routed(), 4u);
}

TEST(BrbUnit, ToleratesOneSilentServer) {
  brb::BrbFactory factory;
  LocalNet net(factory, 4);  // f = 1
  net.mute(3);
  net.request(0, brb::make_broadcast(val(9)));
  net.deliver_all();
  for (ServerId s = 0; s < 3; ++s) {
    ASSERT_TRUE(net.has_indications(s)) << "server " << s;
    EXPECT_EQ(brb::parse_deliver(net.indications(s)[0]), val(9));
  }
}

TEST(BrbUnit, DoesNotDeliverWithTwoSilentOfFour) {
  // n = 4 tolerates f = 1; with two silent servers no 2f+1 quorum forms.
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  net.mute(2);
  net.mute(3);
  net.request(0, brb::make_broadcast(val(9)));
  net.deliver_all();
  EXPECT_FALSE(net.has_indications(0));
  EXPECT_FALSE(net.has_indications(1));
}

TEST(BrbUnit, DuplicateEchoesFromSameSenderDontCount) {
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  Writer w;
  w.u8(static_cast<std::uint8_t>(brb::MsgType::kEcho));
  w.bytes(val(5));
  const Bytes echo = std::move(w).take();
  // Byzantine server 3 sends the same ECHO three times; only one counts.
  for (int i = 0; i < 3; ++i) net.inject(Message{3, 0, echo});
  net.deliver_all();
  // Server 0 echoes (first ECHO triggers its own), but no READY: only two
  // distinct echo senders (0 and 3) < 2f+1 = 3... and 1,2 echo as well once
  // 0's echo reaches them, eventually completing. Count distinct senders:
  // every correct server echoes once, so delivery happens — the point is
  // that the duplicate itself did not fake a quorum prematurely. Verify by
  // checking server 0's READY came only after 3 distinct echoes.
  ASSERT_TRUE(net.has_indications(0));
}

TEST(BrbUnit, ConflictingEchoesCannotBothDeliver) {
  // A byzantine broadcaster echoes different values to different servers:
  // consistency must hold (at most one value gathers quorums).
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  const auto echo_of = [](std::uint8_t v) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(brb::MsgType::kEcho));
    w.bytes(Bytes{v});
    return std::move(w).take();
  };
  // Byzantine 0 sends ECHO 1 to servers 1,2 and ECHO 2 to server 3.
  net.inject(Message{0, 1, echo_of(1)});
  net.inject(Message{0, 2, echo_of(1)});
  net.inject(Message{0, 3, echo_of(2)});
  net.deliver_all();

  Bytes delivered_value;
  for (ServerId s = 1; s < 4; ++s) {
    if (!net.has_indications(s)) continue;
    const auto v = brb::parse_deliver(net.indications(s)[0]);
    ASSERT_TRUE(v.has_value());
    if (delivered_value.empty()) {
      delivered_value = *v;
    } else {
      EXPECT_EQ(delivered_value, *v);  // consistency
    }
  }
}

TEST(BrbUnit, MalformedMessagesIgnored) {
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  net.inject(Message{3, 0, Bytes{0xff, 0x01}});
  net.inject(Message{3, 0, Bytes{}});
  net.deliver_all();
  EXPECT_FALSE(net.has_indications(0));
  // And the instance still works afterwards.
  net.request(0, brb::make_broadcast(val(1)));
  net.deliver_all();
  EXPECT_TRUE(net.has_indications(0));
}

TEST(BrbUnit, MalformedRequestIgnored) {
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  net.request(0, Bytes{9, 9, 9});
  net.deliver_all();
  EXPECT_EQ(net.messages_routed(), 0u);
}

TEST(BrbUnit, SecondBroadcastRequestIgnored) {
  // One BRB instance broadcasts one value (the `echoed` guard).
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  net.request(0, brb::make_broadcast(val(1)));
  net.request(0, brb::make_broadcast(val(2)));
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s));
    EXPECT_EQ(brb::parse_deliver(net.indications(s)[0]), val(1));
    EXPECT_EQ(net.indications(s).size(), 1u);
  }
}

TEST(BrbUnit, ReadyAmplificationFromFPlusOne) {
  // f+1 READYs convert a server to READY even without an echo quorum
  // (Algorithm 4 lines 12–14) — needed for totality.
  brb::BrbFactory factory;
  LocalNet net(factory, 4);
  const auto ready_of = [](std::uint8_t v) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(brb::MsgType::kReady));
    w.bytes(Bytes{v});
    return std::move(w).take();
  };
  // Server 0 receives READY 5 from 1 and 2 (f+1 = 2): it must amplify and
  // send its own READY; with 3 READYs total (1, 2, 0) it delivers.
  net.inject(Message{1, 0, ready_of(5)});
  net.inject(Message{2, 0, ready_of(5)});
  net.deliver_all();
  ASSERT_TRUE(net.has_indications(0));
  EXPECT_EQ(brb::parse_deliver(net.indications(0)[0]), val(5));
}

TEST(BrbUnit, CloneIsDeepAndDigestStable) {
  brb::BrbProcess p(0, 4);
  (void)p.on_request(brb::make_broadcast(val(1)));
  const auto clone = p.clone();
  EXPECT_EQ(p.state_digest(), clone->state_digest());
  // Advancing the clone does not affect the original.
  Writer w;
  w.u8(static_cast<std::uint8_t>(brb::MsgType::kEcho));
  w.bytes(val(1));
  (void)clone->on_message(Message{1, 0, std::move(w).take()});
  EXPECT_NE(p.state_digest(), clone->state_digest());
}

TEST(BrbUnit, DeterministicGivenSameInputs) {
  const auto run = [] {
    brb::BrbProcess p(2, 4);
    Bytes digest;
    Writer w;
    w.u8(static_cast<std::uint8_t>(brb::MsgType::kEcho));
    w.bytes(val(3));
    const Bytes echo = std::move(w).take();
    (void)p.on_message(Message{0, 2, echo});
    (void)p.on_message(Message{1, 2, echo});
    return p.state_digest();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace blockdag
