#include "protocols/bcb.h"

#include <gtest/gtest.h>

#include "testing/local_net.h"
#include "util/serialize.h"

namespace blockdag {
namespace {

using testing::LocalNet;

Bytes val(std::uint8_t v) { return Bytes{v}; }

Bytes echo_of(std::uint8_t v) {
  Writer w;
  w.u8(2);  // kMsgEcho
  w.bytes(Bytes{v});
  return std::move(w).take();
}

TEST(BcbUnit, AllCorrectDeliver) {
  bcb::BcbFactory factory;
  LocalNet net(factory, 4);
  net.request(1, bcb::make_send(val(33)));
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s)) << "server " << s;
    EXPECT_EQ(bcb::parse_deliver(net.indications(s)[0]), val(33));
  }
}

TEST(BcbUnit, EchoesAtMostOnce) {
  bcb::BcbFactory factory;
  LocalNet net(factory, 4);
  // Byzantine broadcaster sends SEND twice with different values; each
  // correct server echoes only the first.
  Writer w1;
  w1.u8(1);
  w1.bytes(val(1));
  Writer w2;
  w2.u8(1);
  w2.bytes(val(2));
  net.inject(Message{0, 1, std::move(w1).take()});
  net.deliver_all();
  const std::size_t after_first = net.messages_routed();
  net.inject(Message{0, 1, std::move(w2).take()});
  net.deliver_all();
  EXPECT_EQ(net.messages_routed(), after_first);  // no second echo burst
}

TEST(BcbUnit, ConsistencyUnderConflictingEchoes) {
  bcb::BcbFactory factory;
  LocalNet net(factory, 4);
  // Byzantine server 0 echoes conflicting values directly.
  net.inject(Message{0, 1, echo_of(1)});
  net.inject(Message{0, 2, echo_of(2)});
  net.deliver_all();
  // No quorum (needs 3 echo senders per value) → nobody delivers.
  for (ServerId s = 0; s < 4; ++s) EXPECT_FALSE(net.has_indications(s));
}

TEST(BcbUnit, NoTotalityByDesign) {
  // If the broadcaster crashes mid-send, some servers may deliver and
  // others not — BCB provides consistency, not totality. Simulate: echoes
  // reach server 1 from 3 distinct senders, but server 2 sees only 2.
  bcb::BcbFactory factory;
  LocalNet net(factory, 4);
  net.inject(Message{0, 1, echo_of(5)});
  net.inject(Message{2, 1, echo_of(5)});
  net.inject(Message{3, 1, echo_of(5)});
  net.inject(Message{0, 2, echo_of(5)});
  net.deliver_all();
  EXPECT_TRUE(net.has_indications(1));
  EXPECT_FALSE(net.has_indications(2));
}

TEST(BcbUnit, DeliversAtMostOnce) {
  bcb::BcbFactory factory;
  LocalNet net(factory, 4);
  for (ServerId s = 0; s < 4; ++s) net.inject(Message{s, 1, echo_of(9)});
  net.deliver_all();
  ASSERT_TRUE(net.has_indications(1));
  EXPECT_EQ(net.indications(1).size(), 1u);
}

TEST(BcbUnit, SecondSendRequestIgnored) {
  bcb::BcbFactory factory;
  LocalNet net(factory, 4);
  net.request(0, bcb::make_send(val(1)));
  net.request(0, bcb::make_send(val(2)));
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s));
    EXPECT_EQ(bcb::parse_deliver(net.indications(s)[0]), val(1));
  }
}

TEST(BcbUnit, MalformedInputIgnored) {
  bcb::BcbFactory factory;
  LocalNet net(factory, 4);
  net.request(0, Bytes{0xff});
  net.inject(Message{0, 1, Bytes{1, 2}});
  net.deliver_all();
  EXPECT_EQ(net.messages_routed(), 0u);
}

TEST(BcbUnit, CloneDigestStable) {
  bcb::BcbProcess p(0, 4);
  (void)p.on_request(bcb::make_send(val(1)));
  EXPECT_EQ(p.state_digest(), p.clone()->state_digest());
}

}  // namespace
}  // namespace blockdag
