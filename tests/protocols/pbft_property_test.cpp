// PBFT-lite property sweep: agreement and validity must survive any
// combination of (random proposals, random complaint schedules, random
// message interleavings, a byzantine leader). Safety is absolute; we
// additionally check termination whenever a correct, proposal-holding
// leader eventually runs a view.
#include <gtest/gtest.h>

#include <deque>

#include "protocols/pbft_lite.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace blockdag {
namespace {

// A chaos harness: like LocalNet but delivers queued messages in a random
// (seeded) order instead of FIFO, and lets a byzantine server inject
// arbitrary equivocating traffic.
class ChaosNet {
 public:
  ChaosNet(std::uint32_t n, std::uint64_t seed) : rng_(seed) {
    pbft::PbftFactory factory;
    for (ServerId s = 0; s < n; ++s) procs_.push_back(factory.create(1, s, n));
  }

  void mute(ServerId s) { muted_.insert(s); }

  void request(ServerId s, const Bytes& r) {
    if (muted_.count(s)) return;
    absorb(s, procs_[s]->on_request(r));
  }

  void inject(const Message& m) { queue_.push_back(m); }

  void deliver_all() {
    while (!queue_.empty()) {
      const std::size_t pick = rng_.below(queue_.size());
      const Message m = queue_[pick];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      if (muted_.count(m.receiver)) continue;
      absorb(m.receiver, procs_[m.receiver]->on_message(m));
    }
  }

  const std::vector<Bytes>& decisions(ServerId s) const {
    static const std::vector<Bytes> kEmpty;
    const auto it = decisions_.find(s);
    return it == decisions_.end() ? kEmpty : it->second;
  }

 private:
  void absorb(ServerId at, StepResult&& result) {
    for (auto& ind : result.indications) {
      if (const auto v = pbft::parse_decide(ind)) decisions_[at].push_back(*v);
    }
    for (auto& m : result.messages) {
      if (!muted_.count(m.sender)) queue_.push_back(std::move(m));
    }
  }

  Rng rng_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::deque<Message> queue_;
  std::map<ServerId, std::vector<Bytes>> decisions_;
  std::set<ServerId> muted_;
};

class PbftChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftChaos, AgreementUnderRandomSchedules) {
  Rng rng(GetParam());
  const std::uint32_t n = 4;
  ChaosNet net(n, GetParam() ^ 0xc0ffee);

  // Everyone proposes a random value; random complaint activity.
  for (ServerId s = 0; s < n; ++s) {
    net.request(s, pbft::make_propose(Bytes{static_cast<std::uint8_t>(1 + rng.below(4))}));
  }
  net.deliver_all();
  for (int burst = 0; burst < 3; ++burst) {
    for (ServerId s = 0; s < n; ++s) {
      if (rng.chance(0.5)) net.request(s, pbft::make_complain());
    }
    net.deliver_all();
  }

  // Agreement + integrity: at most one value, decided at most once each.
  std::optional<Bytes> agreed;
  for (ServerId s = 0; s < n; ++s) {
    const auto& ds = net.decisions(s);
    EXPECT_LE(ds.size(), 1u);
    if (ds.empty()) continue;
    if (!agreed) agreed = ds[0];
    EXPECT_EQ(ds[0], *agreed);
  }
  // Validity: decided values were proposed (range 1..4).
  if (agreed) {
    ASSERT_EQ(agreed->size(), 1u);
    EXPECT_GE((*agreed)[0], 1);
    EXPECT_LE((*agreed)[0], 4);
  }
}

TEST_P(PbftChaos, ByzantineEquivocatingLeaderNeverSplits) {
  Rng rng(GetParam());
  const std::uint32_t n = 4;
  ChaosNet net(n, GetParam());
  net.mute(0);  // leader 0 is byzantine: its honest logic is off...

  for (ServerId s = 1; s < n; ++s) {
    net.request(s, pbft::make_propose(Bytes{static_cast<std::uint8_t>(10 + s)}));
  }
  // ...and it injects conflicting PREPREPAREs and PREPAREs directly.
  const auto msg = [](std::uint8_t type, std::uint64_t view, std::uint8_t v) {
    Writer w;
    w.u8(type);
    w.u64(view);
    w.bytes(Bytes{v});
    return std::move(w).take();
  };
  for (ServerId to = 1; to < n; ++to) {
    net.inject(Message{0, to, msg(1, 0, static_cast<std::uint8_t>(100 + to % 2))});
    net.inject(Message{0, to, msg(2, 0, static_cast<std::uint8_t>(100 + to % 2))});
  }
  net.deliver_all();
  for (ServerId s = 1; s < n; ++s) net.request(s, pbft::make_complain());
  net.deliver_all();
  for (ServerId s = 1; s < n; ++s) net.request(s, pbft::make_complain());
  net.deliver_all();

  std::optional<Bytes> agreed;
  for (ServerId s = 1; s < n; ++s) {
    const auto& ds = net.decisions(s);
    EXPECT_LE(ds.size(), 1u);
    if (ds.empty()) continue;
    if (!agreed) agreed = ds[0];
    EXPECT_EQ(ds[0], *agreed) << "split decision at server " << s;
  }
}

TEST_P(PbftChaos, CorrectLeaderRotationTerminates) {
  // With a silent view-0 leader and persistent complaints, some correct
  // leader eventually decides — and everyone agrees.
  ChaosNet net(4, GetParam());
  net.mute(0);
  for (ServerId s = 1; s < 4; ++s) {
    net.request(s, pbft::make_propose(Bytes{static_cast<std::uint8_t>(7)}));
  }
  net.deliver_all();
  for (int round = 0; round < 4; ++round) {
    for (ServerId s = 1; s < 4; ++s) net.request(s, pbft::make_complain());
    net.deliver_all();
  }
  for (ServerId s = 1; s < 4; ++s) {
    ASSERT_EQ(net.decisions(s).size(), 1u) << "server " << s << " undecided";
    EXPECT_EQ(net.decisions(s)[0], Bytes{7});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftChaos, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace blockdag
