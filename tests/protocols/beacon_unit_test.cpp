#include "protocols/coin_beacon.h"

#include <gtest/gtest.h>

#include "testing/local_net.h"
#include "util/serialize.h"

namespace blockdag {
namespace {

using testing::LocalNet;

TEST(BeaconUnit, EmitsAfterFPlusOneContributions) {
  beacon::BeaconFactory factory;
  LocalNet net(factory, 4);  // f = 1 → threshold 2
  net.request(0, beacon::make_contribute(0xAAAA));
  net.deliver_all();
  EXPECT_FALSE(net.has_indications(0));  // one contribution: not enough
  net.request(1, beacon::make_contribute(0x5555));
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s)) << "server " << s;
    EXPECT_EQ(beacon::parse_beacon(net.indications(s)[0]), 0xAAAA ^ 0x5555);
  }
}

TEST(BeaconUnit, AllServersAgreeOnValue) {
  beacon::BeaconFactory factory;
  LocalNet net(factory, 7);  // f = 2 → threshold 3
  net.request(3, beacon::make_contribute(1));
  net.request(5, beacon::make_contribute(2));
  net.request(1, beacon::make_contribute(4));
  net.deliver_all();
  std::optional<std::uint64_t> agreed;
  for (ServerId s = 0; s < 7; ++s) {
    ASSERT_TRUE(net.has_indications(s));
    const auto v = beacon::parse_beacon(net.indications(s)[0]);
    ASSERT_TRUE(v.has_value());
    if (!agreed) agreed = v;
    EXPECT_EQ(v, agreed);
  }
}

TEST(BeaconUnit, EmitsAtMostOnce) {
  beacon::BeaconFactory factory;
  LocalNet net(factory, 4);
  for (ServerId s = 0; s < 4; ++s) net.request(s, beacon::make_contribute(s + 1));
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(net.indications(s).size(), 1u) << "server " << s;
  }
}

TEST(BeaconUnit, SecondContributionIgnored) {
  beacon::BeaconProcess p(0, 4);
  const auto first = p.on_request(beacon::make_contribute(7));
  EXPECT_EQ(first.messages.size(), 4u);
  const auto second = p.on_request(beacon::make_contribute(9));
  EXPECT_TRUE(second.messages.empty());
}

TEST(BeaconUnit, DuplicateSharesFromSameSenderCountOnce) {
  beacon::BeaconProcess p(0, 4);  // threshold 2
  Writer w;
  w.u8(1);
  w.u64(42);
  const Bytes share = std::move(w).take();
  auto r1 = p.on_message(Message{1, 0, share});
  auto r2 = p.on_message(Message{1, 0, share});  // duplicate: still 1 sender
  EXPECT_TRUE(r1.indications.empty());
  EXPECT_TRUE(r2.indications.empty());
  auto r3 = p.on_message(Message{2, 0, share});
  ASSERT_EQ(r3.indications.size(), 1u);
}

TEST(BeaconUnit, MalformedInputIgnored) {
  beacon::BeaconProcess p(0, 4);
  EXPECT_TRUE(p.on_request(Bytes{1, 2}).messages.empty());
  EXPECT_TRUE(p.on_message(Message{1, 0, Bytes{0xff}}).messages.empty());
}

TEST(BeaconUnit, DigestDeterministic) {
  beacon::BeaconProcess p(0, 4);
  (void)p.on_request(beacon::make_contribute(3));
  EXPECT_EQ(p.state_digest(), p.clone()->state_digest());
}

}  // namespace
}  // namespace blockdag
