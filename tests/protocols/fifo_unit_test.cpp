#include "protocols/fifo_brb.h"

#include <gtest/gtest.h>

#include <map>

#include "testing/local_net.h"
#include "util/serialize.h"

namespace blockdag {
namespace {

using testing::LocalNet;

Bytes val(std::uint8_t v) { return Bytes{v}; }

TEST(FifoUnit, SingleStreamDeliversInOrder) {
  fifo::FifoBrbFactory factory;
  LocalNet net(factory, 4);
  for (std::uint8_t i = 0; i < 5; ++i) {
    net.request(0, fifo::make_broadcast(val(i)));
  }
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_EQ(net.indications(s).size(), 5u) << "server " << s;
    for (std::uint8_t i = 0; i < 5; ++i) {
      const auto d = fifo::parse_deliver(net.indications(s)[i]);
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->origin, 0u);
      EXPECT_EQ(d->seq, i);
      EXPECT_EQ(d->value, val(i));
    }
  }
}

TEST(FifoUnit, InterleavedOriginsKeepPerOriginOrder) {
  fifo::FifoBrbFactory factory;
  LocalNet net(factory, 4);
  net.request(0, fifo::make_broadcast(val(10)));
  net.request(1, fifo::make_broadcast(val(20)));
  net.request(0, fifo::make_broadcast(val(11)));
  net.request(1, fifo::make_broadcast(val(21)));
  net.deliver_all();

  for (ServerId s = 0; s < 4; ++s) {
    std::map<ServerId, std::vector<std::uint64_t>> seqs;
    for (const Bytes& ind : net.indications(s)) {
      const auto d = fifo::parse_deliver(ind);
      ASSERT_TRUE(d.has_value());
      seqs[d->origin].push_back(d->seq);
    }
    EXPECT_EQ(seqs[0], (std::vector<std::uint64_t>{0, 1}));
    EXPECT_EQ(seqs[1], (std::vector<std::uint64_t>{0, 1}));
  }
}

TEST(FifoUnit, HoldbackUntilGapFilled) {
  // Deliver slot 1's quorum before slot 0's: the indication for seq 1 must
  // wait for seq 0.
  fifo::FifoBrbFactory factory;
  LocalNet net(factory, 4);

  const auto ready = [](ServerId origin, std::uint64_t seq, std::uint8_t v) {
    Writer w;
    w.u8(2);  // kMsgReady
    w.u32(origin);
    w.u64(seq);
    w.bytes(Bytes{v});
    return std::move(w).take();
  };
  // Server 3 receives 3 READYs for (origin 0, seq 1): slot delivers, FIFO
  // holds it back.
  for (ServerId s = 0; s < 3; ++s) net.inject(Message{s, 3, ready(0, 1, 9)});
  net.deliver_all();
  EXPECT_FALSE(net.has_indications(3));
  // Now seq 0 completes: both 0 and 1 deliver, in order.
  for (ServerId s = 0; s < 3; ++s) net.inject(Message{s, 3, ready(0, 0, 8)});
  net.deliver_all();
  ASSERT_EQ(net.indications(3).size(), 2u);
  EXPECT_EQ(fifo::parse_deliver(net.indications(3)[0])->seq, 0u);
  EXPECT_EQ(fifo::parse_deliver(net.indications(3)[1])->seq, 1u);
}

TEST(FifoUnit, RejectsOutOfRangeOrigin) {
  fifo::FifoBrbFactory factory;
  LocalNet net(factory, 4);
  Writer w;
  w.u8(1);
  w.u32(99);  // no such server
  w.u64(0);
  w.bytes(val(1));
  net.inject(Message{0, 1, std::move(w).take()});
  net.deliver_all();
  EXPECT_EQ(net.messages_routed(), 0u);
}

TEST(FifoUnit, ToleratesSilentServer) {
  fifo::FifoBrbFactory factory;
  LocalNet net(factory, 4);
  net.mute(3);
  net.request(0, fifo::make_broadcast(val(1)));
  net.request(0, fifo::make_broadcast(val(2)));
  net.deliver_all();
  for (ServerId s = 0; s < 3; ++s) {
    ASSERT_EQ(net.indications(s).size(), 2u) << "server " << s;
  }
}

TEST(FifoUnit, EncodingRoundTrip) {
  const fifo::Delivery d{2, 7, val(42)};
  const auto parsed = fifo::parse_deliver(fifo::make_deliver(d));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->origin, 2u);
  EXPECT_EQ(parsed->seq, 7u);
  EXPECT_EQ(parsed->value, val(42));
  EXPECT_FALSE(fifo::parse_deliver(Bytes{1}).has_value());
}

TEST(FifoUnit, CloneDeepCopiesHoldback) {
  fifo::FifoBrbProcess p(0, 4);
  (void)p.on_request(fifo::make_broadcast(val(1)));
  const auto clone = p.clone();
  EXPECT_EQ(p.state_digest(), clone->state_digest());
  (void)clone->on_request(fifo::make_broadcast(val(2)));
  EXPECT_NE(p.state_digest(), clone->state_digest());
}

}  // namespace
}  // namespace blockdag
