#include "protocols/pbft_lite.h"

#include <gtest/gtest.h>

#include "testing/local_net.h"
#include "util/serialize.h"

namespace blockdag {
namespace {

using testing::LocalNet;

Bytes val(std::uint8_t v) { return Bytes{v}; }

TEST(PbftUnit, NormalCaseDecides) {
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  net.request(0, pbft::make_propose(val(42)));  // server 0 leads view 0
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s)) << "server " << s;
    EXPECT_EQ(pbft::parse_decide(net.indications(s)[0]), val(42));
    EXPECT_EQ(net.indications(s).size(), 1u);  // decide at most once
  }
}

TEST(PbftUnit, NonLeaderProposalWaits) {
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  net.request(1, pbft::make_propose(val(7)));  // server 1 is not view-0 leader
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) EXPECT_FALSE(net.has_indications(s));
}

TEST(PbftUnit, SilentLeaderViewChangeDecides) {
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  net.mute(0);  // leader of view 0 says nothing
  net.request(1, pbft::make_propose(val(9)));
  net.deliver_all();
  // Nothing decided; complaints (externalized timeouts) fire at correct
  // servers.
  for (ServerId s = 1; s < 4; ++s) net.request(s, pbft::make_complain());
  net.deliver_all();
  // View 1's leader is server 1, which has a proposal.
  for (ServerId s = 1; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s)) << "server " << s;
    EXPECT_EQ(pbft::parse_decide(net.indications(s)[0]), val(9));
  }
}

TEST(PbftUnit, ComplaintAmplificationFromFPlusOne) {
  // Only f+1 = 2 servers complain explicitly; the third correct server must
  // join via amplification so the 2f+1 view-change quorum forms.
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  net.mute(0);
  net.request(1, pbft::make_propose(val(5)));
  net.request(1, pbft::make_complain());
  net.request(2, pbft::make_complain());
  net.deliver_all();
  for (ServerId s = 1; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s)) << "server " << s;
  }
}

TEST(PbftUnit, LockedValueSurvivesViewChange) {
  // Safety across views: once a value may have been decided, later views
  // cannot decide differently. Drive server 3 to lock (2f+1 prepares) in
  // view 0, then force a view change and let server 1 lead with another
  // proposal: the run must not produce two different decisions.
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  net.request(0, pbft::make_propose(val(1)));
  net.request(1, pbft::make_propose(val(2)));
  net.deliver_all();  // view 0 completes normally, everyone decides 1
  for (ServerId s = 1; s < 4; ++s) net.request(s, pbft::make_complain());
  net.deliver_all();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_TRUE(net.has_indications(s));
    for (const Bytes& ind : net.indications(s)) {
      EXPECT_EQ(pbft::parse_decide(ind), val(1));
    }
  }
}

TEST(PbftUnit, EquivocatingLeaderCannotSplitDecision) {
  // Byzantine leader sends PREPREPARE(0, v1) to half, PREPREPARE(0, v2) to
  // the other half. At most one value can assemble 2f+1 prepares.
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  const auto preprepare = [](std::uint8_t v) {
    Writer w;
    w.u8(1);  // kMsgPrePrepare
    w.u64(0);
    w.bytes(Bytes{v});
    return std::move(w).take();
  };
  net.inject(Message{0, 1, preprepare(1)});
  net.inject(Message{0, 2, preprepare(1)});
  net.inject(Message{0, 3, preprepare(2)});
  net.deliver_all();

  Bytes decided;
  for (ServerId s = 1; s < 4; ++s) {
    for (const Bytes& ind : net.indications(s)) {
      const auto v = pbft::parse_decide(ind);
      ASSERT_TRUE(v.has_value());
      if (decided.empty()) {
        decided = *v;
      } else {
        EXPECT_EQ(decided, *v);  // agreement
      }
    }
  }
}

TEST(PbftUnit, IgnoresPrePrepareFromNonLeader) {
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  Writer w;
  w.u8(1);
  w.u64(0);
  w.bytes(val(6));
  net.inject(Message{2, 1, std::move(w).take()});  // 2 is not view-0 leader
  net.deliver_all();
  EXPECT_EQ(net.messages_routed(), 0u);
}

TEST(PbftUnit, IgnoresEmptyProposal) {
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  net.request(0, pbft::make_propose(Bytes{}));
  net.deliver_all();
  EXPECT_EQ(net.messages_routed(), 0u);
}

TEST(PbftUnit, MalformedMessagesIgnored) {
  pbft::PbftFactory factory;
  LocalNet net(factory, 4);
  net.inject(Message{0, 1, Bytes{0x07}});
  net.inject(Message{0, 1, Bytes{}});
  net.deliver_all();
  EXPECT_EQ(net.messages_routed(), 0u);
}

TEST(PbftUnit, FutureViewPrePrepareBufferedAndReplayed) {
  // A PREPREPARE for view 1 arriving while the server is still in view 0
  // must not be lost: it is buffered and replayed on view entry (there is
  // no global view clock — liveness depends on this).
  pbft::PbftProcess p(2, 4);
  Writer pp;
  pp.u8(1);  // kMsgPrePrepare
  pp.u64(1); // view 1 (leader = server 1)
  pp.bytes(val(6));
  const auto early = p.on_message(Message{1, 2, std::move(pp).take()});
  EXPECT_TRUE(early.messages.empty());  // too early: buffered, no PREPARE yet

  // 2f+1 complaints about view 0 arrive; entering view 1 replays the
  // buffered PREPREPARE and emits our PREPARE.
  Writer c;
  c.u8(4);  // kMsgComplain
  c.u64(0);
  c.bytes(Bytes{});
  const Bytes complain = std::move(c).take();
  (void)p.on_message(Message{0, 2, complain});
  (void)p.on_message(Message{1, 2, complain});
  const auto entered = p.on_message(Message{3, 2, complain});
  ASSERT_FALSE(entered.messages.empty());
  bool saw_prepare = false;
  for (const Message& m : entered.messages) {
    Reader r(m.payload);
    if (r.u8() == 2) saw_prepare = true;  // kMsgPrepare
  }
  EXPECT_TRUE(saw_prepare);
  EXPECT_EQ(p.view(), 1u);
}

TEST(PbftUnit, PrepareQuorumBeforeViewEntryStillCommits) {
  // PREPARE messages for view 1 all arrive while we are in view 0; the
  // quorum must be honored when we enter view 1.
  pbft::PbftProcess p(2, 4);
  Writer pr;
  pr.u8(2);  // kMsgPrepare
  pr.u64(1);
  pr.bytes(val(6));
  const Bytes prepare = std::move(pr).take();
  for (ServerId s : {0u, 1u, 3u}) {
    const auto r = p.on_message(Message{s, 2, prepare});
    EXPECT_TRUE(r.messages.empty());  // still in view 0: no COMMIT yet
  }
  Writer c;
  c.u8(4);
  c.u64(0);
  c.bytes(Bytes{});
  const Bytes complain = std::move(c).take();
  (void)p.on_message(Message{0, 2, complain});
  (void)p.on_message(Message{1, 2, complain});
  const auto entered = p.on_message(Message{3, 2, complain});
  bool saw_commit = false;
  for (const Message& m : entered.messages) {
    Reader r(m.payload);
    if (r.u8() == 3) saw_commit = true;  // kMsgCommit
  }
  EXPECT_TRUE(saw_commit);
}

TEST(PbftUnit, StateDigestReflectsProgress) {
  pbft::PbftProcess p(0, 4);
  const Bytes d0 = p.state_digest();
  (void)p.on_request(pbft::make_propose(val(1)));
  const Bytes d1 = p.state_digest();
  EXPECT_NE(d0, d1);
  EXPECT_EQ(p.clone()->state_digest(), d1);
}

}  // namespace
}  // namespace blockdag
