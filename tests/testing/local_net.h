// LocalNet: drives n process instances of a protocol over an in-memory
// perfect point-to-point link — the abstraction of Lemma 4.3, materialized
// trivially. Used by protocol unit tests to check P's behaviour before it
// is embedded in a DAG, and by equivalence tests (Theorem 5.1: shim(P)
// behaves like P over a reliable link).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "protocol/protocol.h"

namespace blockdag::testing {

class LocalNet {
 public:
  LocalNet(const ProtocolFactory& factory, std::uint32_t n, Label label = 1) {
    for (ServerId s = 0; s < n; ++s) {
      procs_.push_back(factory.create(label, s, n));
    }
  }

  Process& process(ServerId s) { return *procs_[s]; }

  // Makes `server` byzantine-silent: its outgoing messages are discarded.
  void mute(ServerId server) { muted_.insert(server); }

  // Drops every message on the (from → to) link.
  void cut(ServerId from, ServerId to) { cuts_.insert({from, to}); }

  void request(ServerId server, const Bytes& request) {
    absorb(server, procs_[server]->on_request(request));
  }

  // Injects a raw message, as a byzantine server could.
  void inject(const Message& m) { queue_.push_back(m); }

  // Delivers queued messages FIFO until quiescence.
  void deliver_all() {
    while (!queue_.empty()) {
      const Message m = queue_.front();
      queue_.pop_front();
      absorb(m.receiver, procs_[m.receiver]->on_message(m));
    }
  }

  const std::vector<Bytes>& indications(ServerId server) const {
    static const std::vector<Bytes> kEmpty;
    const auto it = indications_.find(server);
    return it == indications_.end() ? kEmpty : it->second;
  }
  bool has_indications(ServerId server) const {
    return indications_.count(server) && !indications_.at(server).empty();
  }

  std::size_t messages_routed() const { return routed_; }

 private:
  void absorb(ServerId at, StepResult&& result) {
    for (auto& ind : result.indications) indications_[at].push_back(std::move(ind));
    for (auto& m : result.messages) {
      if (muted_.count(at) || cuts_.count({m.sender, m.receiver})) continue;
      ++routed_;
      queue_.push_back(std::move(m));
    }
  }

  std::vector<std::unique_ptr<Process>> procs_;
  std::deque<Message> queue_;
  std::map<ServerId, std::vector<Bytes>> indications_;
  std::set<ServerId> muted_;
  std::set<std::pair<ServerId, ServerId>> cuts_;
  std::size_t routed_ = 0;
};

}  // namespace blockdag::testing
