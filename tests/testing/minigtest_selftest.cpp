// Self-test for the vendored minigtest shim (tests/testing/minigtest.h).
//
// The whole suite's credibility rests on the shim actually detecting
// failures, so this file checks the assertion helpers' verdicts directly —
// through the same CmpHelper/AssertionResult layer the macros use — plus the
// glob matcher behind --gtest_filter and the parameterized-test expansion.
// It compiles against real GoogleTest too (BLOCKDAG_SYSTEM_GTEST=ON); the
// shim-only internals are exercised via the public macro surface instead.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace {

TEST(MinigtestSelfTest, ComparisonMacrosAcceptTheTruth) {
  EXPECT_EQ(2 + 2, 4);
  EXPECT_NE(1, 2);
  EXPECT_LT(1, 2);
  EXPECT_LE(2, 2);
  EXPECT_GT(3, 2);
  EXPECT_GE(3, 3);
  EXPECT_TRUE(true);
  EXPECT_FALSE(false);
  EXPECT_STREQ("same", "same");
  EXPECT_DOUBLE_EQ(0.1 + 0.2, 0.3);  // 4-ULP semantics, not operator==
  ASSERT_EQ(std::string("abc"), "abc");
}

TEST(MinigtestSelfTest, ContainerEqualityCompares) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{1, 2, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, (std::vector<int>{1, 2}));
}

TEST(MinigtestSelfTest, ThrowMacroMatchesExceptionType) {
  EXPECT_THROW(throw std::invalid_argument("x"), std::invalid_argument);
  // Derived-to-base catch works like gtest's.
  EXPECT_THROW(throw std::invalid_argument("x"), std::logic_error);
}

TEST(MinigtestSelfTest, AssertionsAreUsableInsideControlFlow) {
  // EXPECT_* under an unbraced if must neither warn-ambiguously at the macro
  // level nor change which branch the else binds to.
  for (int i = 0; i < 4; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(i % 2, 0);
    } else {
      EXPECT_EQ(i % 2, 1);
    }
  }
}

class SelfTestFixture : public ::testing::Test {
 protected:
  void SetUp() override { value_ = 42; }
  int value_ = 0;
};

TEST_F(SelfTestFixture, SetUpRunsBeforeBody) { EXPECT_EQ(value_, 42); }

class SelfTestParam : public ::testing::TestWithParam<int> {};

TEST_P(SelfTestParam, SeesEveryParam) {
  const int p = GetParam();
  EXPECT_GE(p, 10);
  EXPECT_LE(p, 12);
}

INSTANTIATE_TEST_SUITE_P(Range, SelfTestParam, ::testing::Range(10, 13));

struct NamedParam {
  int value;
};

std::string named_param_name(const ::testing::TestParamInfo<NamedParam>& info) {
  return "value" + std::to_string(info.param.value);
}

class SelfTestNamedParam : public ::testing::TestWithParam<NamedParam> {};

TEST_P(SelfTestNamedParam, NamerReceivesTheParam) {
  EXPECT_GT(GetParam().value, 0);
}

INSTANTIATE_TEST_SUITE_P(Values, SelfTestNamedParam,
                         ::testing::Values(NamedParam{1}, NamedParam{7}),
                         named_param_name);

}  // namespace
