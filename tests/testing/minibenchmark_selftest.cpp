// Self-test of the vendored google-benchmark shim (minibenchmark.h): the
// registration macro, the State iteration protocol, counters, arg passing,
// the adaptive-iteration runner, and the JSON reporter tools/bench_all.sh
// depends on. Keeps the offline bench harness from rotting the way the
// optional find_package(benchmark) path did.
#include "testing/minibenchmark.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

int g_iterations_observed = 0;
std::int64_t g_last_range0 = -1;
std::int64_t g_last_range1 = -1;

void BM_ShimLoop(benchmark::State& state) {
  g_last_range0 = state.range(0);
  g_last_range1 = state.range(1);
  int local = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++local);
  }
  g_iterations_observed = local;
  state.counters["items"] = static_cast<double>(local);
  state.counters["items/s"] = benchmark::Counter(static_cast<double>(local),
                                                 benchmark::Counter::kIsRate);
  state.SetItemsProcessed(local);
}
BENCHMARK(BM_ShimLoop)->Args({3, 9})->Unit(benchmark::kMicrosecond);

void BM_ShimPause(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    // untimed setup
    state.ResumeTiming();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ShimPause)->Arg(1)->Iterations(16);

TEST(MinibenchmarkShim, RunsAndEmitsParsableJson) {
  const std::string out_path = "minibenchmark_selftest_out.json";
  benchmark::internal::options() = benchmark::internal::Options{};
  benchmark::internal::options().min_time = 0.01;
  benchmark::internal::options().out_path = out_path;
  benchmark::internal::options().out_format = "json";

  const std::size_t runs = benchmark::RunSpecifiedBenchmarks();
  EXPECT_EQ(runs, 2u);
  EXPECT_GT(g_iterations_observed, 0);
  EXPECT_EQ(g_last_range0, 3);
  EXPECT_EQ(g_last_range1, 9);

  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  // Structural sanity: our run names, counters, and balanced braces /
  // brackets (a cheap but effective validity check without a JSON lib —
  // no emitted string contains braces).
  EXPECT_NE(json.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(json.find("\"BM_ShimLoop/3/9\""), std::string::npos);
  EXPECT_NE(json.find("\"BM_ShimPause/1\""), std::string::npos);
  EXPECT_NE(json.find("\"items/s\""), std::string::npos);
  EXPECT_NE(json.find("\"time_unit\": \"us\""), std::string::npos);
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::remove(out_path.c_str());
}

TEST(MinibenchmarkShim, FilterSelectsSubset) {
  benchmark::internal::options() = benchmark::internal::Options{};
  benchmark::internal::options().min_time = 0.001;
  benchmark::internal::options().filter = "ShimPause";
  EXPECT_EQ(benchmark::RunSpecifiedBenchmarks(), 1u);
}

TEST(MinibenchmarkShim, RangeTerminatesOnZeroLowerBoundAndHitsBothEnds) {
  benchmark::internal::Benchmark b("range_probe", nullptr);
  b.RangeMultiplier(8)->Range(0, 64);
  const std::vector<std::vector<std::int64_t>> expect = {{0}, {1}, {8}, {64}};
  EXPECT_EQ(b.arg_sets(), expect);

  benchmark::internal::Benchmark c("range_probe2", nullptr);
  c.Range(3, 3);
  const std::vector<std::vector<std::int64_t>> expect_single = {{3}};
  EXPECT_EQ(c.arg_sets(), expect_single);
}

TEST(MinibenchmarkShim, InitializeParsesAndStripsFlags) {
  benchmark::internal::options() = benchmark::internal::Options{};
  const char* raw[] = {"prog", "--benchmark_min_time=0.25s",
                       "--benchmark_filter=Loop", "--json=x.json", "leftover"};
  char* argv[5];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 5;
  benchmark::Initialize(&argc, argv);
  EXPECT_EQ(argc, 2);  // prog + leftover survive
  EXPECT_EQ(std::string(argv[1]), "leftover");
  EXPECT_EQ(benchmark::internal::options().min_time, 0.25);
  EXPECT_EQ(benchmark::internal::options().filter, "Loop");
  EXPECT_EQ(benchmark::internal::options().out_path, "x.json");
  benchmark::internal::options() = benchmark::internal::Options{};
}

}  // namespace
