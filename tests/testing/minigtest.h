// minigtest — a vendored, single-header, GoogleTest-compatible test shim.
//
// The build environment is offline, so instead of fetching GoogleTest the
// test suite compiles against this header by default (the `gtest` interface
// target in CMakeLists.txt maps `<gtest/gtest.h>` here). Configure with
// -DBLOCKDAG_SYSTEM_GTEST=ON to swap in a real system GoogleTest instead;
// the suite uses only the subset implemented below, so both must behave
// identically for every test in tests/.
//
// Implemented subset:
//   TEST, TEST_F, TEST_P / ::testing::TestWithParam<T> / GetParam()
//   INSTANTIATE_TEST_SUITE_P with ::testing::Range / ::testing::Values and
//     an optional name-generator taking ::testing::TestParamInfo<T>
//   EXPECT_/ASSERT_ {TRUE, FALSE, EQ, NE, LT, LE, GT, GE, STREQ, DOUBLE_EQ,
//     THROW}, SUCCEED(), FAIL(), ADD_FAILURE(), all streamable with <<
//   ::testing::Test fixture base with virtual SetUp()/TearDown()
//   Test registry, gtest-style console reporter, RUN_ALL_TESTS(),
//   --gtest_filter=GLOB[:GLOB...][-GLOB...] and --gtest_list_tests
//
// Deliberately absent (unused by this suite): death tests, matchers/gmock,
// typed tests, sharding, XML output, threadsafe assertions.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

// ---------------------------------------------------------------------------
// Value printing: stream when the type supports it, otherwise recurse into
// containers/optionals/pairs, otherwise admit defeat. Mirrors the part of
// gtest's universal printer the suite relies on (vectors of ints/bytes).
// ---------------------------------------------------------------------------
namespace internal {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T, typename = void>
struct IsContainer : std::false_type {};
template <typename T>
struct IsContainer<T, std::void_t<decltype(std::begin(std::declval<const T&>())),
                                  decltype(std::end(std::declval<const T&>()))>>
    : std::true_type {};

template <typename T>
void PrintTo(const T& value, std::ostream& os);

inline void PrintTo(bool value, std::ostream& os) { os << (value ? "true" : "false"); }
inline void PrintTo(char value, std::ostream& os) { os << "'" << value << "'"; }
inline void PrintTo(signed char value, std::ostream& os) { os << static_cast<int>(value); }
inline void PrintTo(unsigned char value, std::ostream& os) { os << static_cast<unsigned>(value); }
inline void PrintTo(const std::string& value, std::ostream& os) { os << '"' << value << '"'; }
inline void PrintTo(const char* value, std::ostream& os) {
  if (value == nullptr) {
    os << "NULL";
  } else {
    os << '"' << value << '"';
  }
}

template <typename A, typename B>
void PrintTo(const std::pair<A, B>& value, std::ostream& os) {
  os << '(';
  PrintTo(value.first, os);
  os << ", ";
  PrintTo(value.second, os);
  os << ')';
}

template <typename T>
void PrintTo(const std::optional<T>& value, std::ostream& os) {
  if (value.has_value()) {
    os << "optional(";
    PrintTo(*value, os);
    os << ')';
  } else {
    os << "nullopt";
  }
}

template <typename T>
void PrintTo(const T& value, std::ostream& os) {
  if constexpr (std::is_enum_v<T>) {
    os << static_cast<std::underlying_type_t<T>>(value);
  } else if constexpr (IsStreamable<T>::value) {
    os << value;
  } else if constexpr (IsContainer<T>::value) {
    os << "{ ";
    std::size_t count = 0;
    for (const auto& element : value) {
      if (count > 0) os << ", ";
      if (++count > 32) {
        os << "...";
        break;
      }
      PrintTo(element, os);
    }
    os << " }";
  } else {
    os << "<" << sizeof(T) << "-byte object>";
  }
}

template <typename T>
std::string PrintToString(const T& value) {
  std::ostringstream os;
  PrintTo(value, os);
  return os.str();
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Message / AssertionResult — the streaming glue behind EXPECT_* << "...".
// ---------------------------------------------------------------------------
class Message {
 public:
  Message() = default;
  Message(const Message& other) { ss_ << other.str(); }

  template <typename T>
  Message& operator<<(const T& value) {
    ss_ << value;
    return *this;
  }

  std::string str() const { return ss_.str(); }

 private:
  std::ostringstream ss_;
};

class AssertionResult {
 public:
  explicit AssertionResult(bool success) : success_(success) {}
  AssertionResult(const AssertionResult& other)
      : success_(other.success_), message_(other.message_) {}

  explicit operator bool() const { return success_; }

  template <typename T>
  AssertionResult& operator<<(const T& value) {
    std::ostringstream os;
    os << value;
    message_ += os.str();
    return *this;
  }

  const std::string& message() const { return message_; }

 private:
  bool success_;
  std::string message_;
};

inline AssertionResult AssertionSuccess() { return AssertionResult(true); }
inline AssertionResult AssertionFailure() { return AssertionResult(false); }

// ---------------------------------------------------------------------------
// Fixture base classes.
// ---------------------------------------------------------------------------
class Test {
 public:
  virtual ~Test() = default;
  virtual void SetUp() {}
  virtual void TearDown() {}
  virtual void TestBody() = 0;
};

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  const ParamType& GetParam() const { return *param_; }
  void SetParam(const ParamType* param) { param_ = param; }

 private:
  const ParamType* param_ = nullptr;
};

template <typename T>
struct TestParamInfo {
  TestParamInfo(const T& a_param, std::size_t an_index)
      : param(a_param), index(an_index) {}
  T param;
  std::size_t index;
};

// Parameter generators. Real gtest returns lazy generator objects; the suite
// only ever passes these straight to INSTANTIATE_TEST_SUITE_P, so eager
// vectors are indistinguishable.
template <typename T, typename IncrementT = int>
std::vector<T> Range(T begin, T end, IncrementT step = 1) {
  std::vector<T> values;
  for (T v = begin; v < end; v = static_cast<T>(v + step)) values.push_back(v);
  return values;
}

template <typename T, typename... Rest>
std::vector<T> Values(T first, Rest... rest) {
  return std::vector<T>{first, static_cast<T>(rest)...};
}

// ---------------------------------------------------------------------------
// Registry + runner.
// ---------------------------------------------------------------------------
namespace internal {

struct TestInfo {
  std::string suite_name;   // includes "Prefix/" for instantiated suites
  std::string test_name;    // includes "/ParamName" for instantiated tests
  std::function<Test*()> factory;
};

struct Registry {
  std::vector<TestInfo> tests;
  // Deferred expansion of TEST_P x INSTANTIATE_TEST_SUITE_P cross products,
  // run once at RUN_ALL_TESTS() so macro order within a file is irrelevant.
  std::vector<std::function<void(Registry&)>> param_expanders;

  // Per-test outcome state, written by assertion macros via AssertHelper.
  bool current_failed = false;
  bool current_fatal = false;
  std::size_t checks_executed = 0;

  static Registry& Instance() {
    static Registry registry;
    return registry;
  }
};

inline int RegisterTest(const char* suite, const char* name,
                        std::function<Test*()> factory) {
  Registry::Instance().tests.push_back(TestInfo{suite, name, std::move(factory)});
  return 0;
}

// Registration state for one TestWithParam fixture class.
template <typename SuiteClass>
class ParamRegistry {
 public:
  using ParamType = typename SuiteClass::ParamType;
  using Namer = std::function<std::string(const TestParamInfo<ParamType>&)>;
  using Factory = Test* (*)(const ParamType*);

  static ParamRegistry& Instance() {
    static ParamRegistry registry;
    return registry;
  }

  int AddTest(const char* suite, const char* name, Factory factory) {
    suite_name_ = suite;
    tests_.push_back({name, factory});
    EnsureExpanderRegistered();
    return 0;
  }

  int AddInstantiation(const char* prefix, std::vector<ParamType> params) {
    return AddInstantiation(prefix, std::move(params), Namer());
  }

  int AddInstantiation(const char* prefix, std::vector<ParamType> params,
                       Namer namer) {
    instantiations_.push_back({prefix, std::move(params), std::move(namer)});
    EnsureExpanderRegistered();
    return 0;
  }

 private:
  struct ParamTest {
    std::string name;
    Factory factory;
  };
  struct Instantiation {
    std::string prefix;
    std::vector<ParamType> params;
    Namer namer;
  };

  void EnsureExpanderRegistered() {
    if (expander_registered_) return;
    expander_registered_ = true;
    Registry::Instance().param_expanders.push_back(
        [](Registry& registry) { Instance().Expand(registry); });
  }

  void Expand(Registry& registry) {
    for (const Instantiation& inst : instantiations_) {
      for (std::size_t i = 0; i < inst.params.size(); ++i) {
        // Parameters live in this singleton for the whole run; handing tests
        // a stable pointer matches gtest's GetParam() lifetime contract.
        const ParamType* param = &inst.params[i];
        std::string param_name = inst.namer
            ? inst.namer(TestParamInfo<ParamType>(*param, i))
            : std::to_string(i);
        for (const ParamTest& test : tests_) {
          registry.tests.push_back(TestInfo{
              inst.prefix + "/" + suite_name_,
              test.name + "/" + param_name,
              [factory = test.factory, param]() { return factory(param); }});
        }
      }
    }
  }

  std::string suite_name_;
  std::vector<ParamTest> tests_;
  std::deque<Instantiation> instantiations_;  // stable addresses for params
  bool expander_registered_ = false;
};

// Reports one assertion failure; created by the macros below, message text is
// streamed in via `= Message() << ...` exactly like gtest's AssertHelper.
class AssertHelper {
 public:
  AssertHelper(bool fatal, const char* file, int line, std::string summary)
      : fatal_(fatal), file_(file), line_(line), summary_(std::move(summary)) {}

  void operator=(const Message& message) const {
    Registry& registry = Registry::Instance();
    registry.current_failed = true;
    if (fatal_) registry.current_fatal = true;
    std::fprintf(stderr, "%s:%d: Failure\n%s", file_, line_, summary_.c_str());
    const std::string extra = message.str();
    if (!extra.empty()) std::fprintf(stderr, "\n%s", extra.c_str());
    std::fprintf(stderr, "\n");
  }

 private:
  bool fatal_;
  const char* file_;
  int line_;
  std::string summary_;
};

// Swallows `SUCCEED() << "..."` style streams.
struct MessageSink {
  template <typename T>
  MessageSink& operator<<(const T&) { return *this; }
};

// Comparison helpers. The pragma keeps -Wsign-compare diagnostics (whose
// location is this template, not the call site) from firing for mixed-sign
// EXPECT_EQ uses, matching how tests written against gtest expect to build.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wsign-compare"
#endif
#define MINIGTEST_DEFINE_CMP_(helper_name, op, negated_op_text)               \
  template <typename A, typename B>                                           \
  AssertionResult helper_name(const char* lhs_text, const char* rhs_text,     \
                              const A& lhs, const B& rhs) {                   \
    if (lhs op rhs) return AssertionSuccess();                                \
    return AssertionFailure()                                                 \
           << "Expected: (" << lhs_text << ") " #op " (" << rhs_text          \
           << "), actual: " << PrintToString(lhs) << " " negated_op_text " "  \
           << PrintToString(rhs);                                             \
  }

MINIGTEST_DEFINE_CMP_(CmpHelperNE, !=, "vs")
MINIGTEST_DEFINE_CMP_(CmpHelperLT, <, "vs")
MINIGTEST_DEFINE_CMP_(CmpHelperLE, <=, "vs")
MINIGTEST_DEFINE_CMP_(CmpHelperGT, >, "vs")
MINIGTEST_DEFINE_CMP_(CmpHelperGE, >=, "vs")
#undef MINIGTEST_DEFINE_CMP_

template <typename A, typename B>
AssertionResult CmpHelperEQ(const char* lhs_text, const char* rhs_text,
                            const A& lhs, const B& rhs) {
  if (lhs == rhs) return AssertionSuccess();
  return AssertionFailure() << "Expected equality of these values:\n  "
                            << lhs_text << "\n    Which is: " << PrintToString(lhs)
                            << "\n  " << rhs_text
                            << "\n    Which is: " << PrintToString(rhs);
}
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

inline AssertionResult CmpHelperSTREQ(const char* lhs_text, const char* rhs_text,
                                      const char* lhs, const char* rhs) {
  const bool equal = (lhs == nullptr || rhs == nullptr)
                         ? lhs == rhs
                         : std::strcmp(lhs, rhs) == 0;
  if (equal) return AssertionSuccess();
  return AssertionFailure() << "Expected equality of these values:\n  "
                            << lhs_text << "\n    Which is: " << PrintToString(lhs)
                            << "\n  " << rhs_text
                            << "\n    Which is: " << PrintToString(rhs);
}

// gtest's AlmostEquals: equal within 4 units in the last place.
inline bool AlmostEqualDoubles(double lhs, double rhs) {
  if (std::isnan(lhs) || std::isnan(rhs)) return false;
  if (lhs == rhs) return true;
  const auto biased = [](double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;
    return (bits & kSignBit) ? ~bits + 1 : bits | kSignBit;
  };
  const std::uint64_t a = biased(lhs);
  const std::uint64_t b = biased(rhs);
  return (a > b ? a - b : b - a) <= 4;
}

inline AssertionResult CmpHelperDoubleEQ(const char* lhs_text,
                                         const char* rhs_text, double lhs,
                                         double rhs) {
  if (AlmostEqualDoubles(lhs, rhs)) return AssertionSuccess();
  std::ostringstream msg;
  msg.precision(17);
  msg << "Expected equality (within 4 ULPs) of these values:\n  " << lhs_text
      << "\n    Which is: " << lhs << "\n  " << rhs_text
      << "\n    Which is: " << rhs;
  return AssertionFailure() << msg.str();
}

// Simple glob with '*' and '?', the subset --gtest_filter needs.
inline bool GlobMatch(const char* pattern, const char* text) {
  while (*pattern != '\0') {
    if (*pattern == '*') {
      while (*pattern == '*') ++pattern;
      for (const char* t = text;; ++t) {
        if (GlobMatch(pattern, t)) return true;
        if (*t == '\0') return false;
      }
    }
    if (*text == '\0') return false;
    if (*pattern != '?' && *pattern != *text) return false;
    ++pattern;
    ++text;
  }
  return *text == '\0';
}

inline bool FilterMatches(const std::string& filter, const std::string& name) {
  if (filter.empty()) return true;
  const std::string::size_type dash = filter.find('-');
  const std::string positive = filter.substr(0, dash);
  const std::string negative =
      dash == std::string::npos ? std::string() : filter.substr(dash + 1);
  const auto any_match = [&name](const std::string& patterns, bool if_empty) {
    if (patterns.empty()) return if_empty;
    std::string::size_type start = 0;
    while (start <= patterns.size()) {
      std::string::size_type colon = patterns.find(':', start);
      if (colon == std::string::npos) colon = patterns.size();
      const std::string pattern = patterns.substr(start, colon - start);
      if (!pattern.empty() && GlobMatch(pattern.c_str(), name.c_str())) {
        return true;
      }
      start = colon + 1;
    }
    return false;
  };
  return any_match(positive, true) && !any_match(negative, false);
}

inline std::string& FilterFlag() {
  static std::string filter;
  return filter;
}

inline int RunAllTests() {
  Registry& registry = Registry::Instance();
  for (const auto& expand : registry.param_expanders) expand(registry);
  registry.param_expanders.clear();

  std::string filter;
  if (const char* env = std::getenv("GTEST_FILTER")) filter = env;
  // An argv-provided --gtest_filter (stashed by InitGoogleTest) wins.
  if (!FilterFlag().empty()) filter = FilterFlag();

  std::vector<const TestInfo*> selected;
  for (const TestInfo& test : registry.tests) {
    if (FilterMatches(filter, test.suite_name + "." + test.test_name)) {
      selected.push_back(&test);
    }
  }

  std::printf("[==========] Running %zu tests.\n", selected.size());
  std::vector<std::string> failed_names;
  for (const TestInfo* test : selected) {
    const std::string full_name = test->suite_name + "." + test->test_name;
    std::printf("[ RUN      ] %s\n", full_name.c_str());
    std::fflush(stdout);
    registry.current_failed = false;
    registry.current_fatal = false;
    try {
      std::unique_ptr<Test> instance(test->factory());
      instance->SetUp();
      // Mirror gtest: a fatal failure in SetUp() skips the test body.
      if (!registry.current_fatal) instance->TestBody();
      instance->TearDown();
    } catch (const std::exception& e) {
      registry.current_failed = true;
      std::fprintf(stderr, "unexpected exception: %s\n", e.what());
    } catch (...) {
      registry.current_failed = true;
      std::fprintf(stderr, "unexpected non-std exception\n");
    }
    if (registry.current_failed) {
      failed_names.push_back(full_name);
      std::printf("[  FAILED  ] %s\n", full_name.c_str());
    } else {
      std::printf("[       OK ] %s\n", full_name.c_str());
    }
    std::fflush(stdout);
  }

  std::printf("[==========] %zu tests ran.\n", selected.size());
  std::printf("[  PASSED  ] %zu tests.\n", selected.size() - failed_names.size());
  if (!failed_names.empty()) {
    std::printf("[  FAILED  ] %zu tests, listed below:\n", failed_names.size());
    for (const std::string& name : failed_names) {
      std::printf("[  FAILED  ] %s\n", name.c_str());
    }
  }
  std::fflush(stdout);
  return failed_names.empty() ? 0 : 1;
}

inline void ListTests() {
  Registry& registry = Registry::Instance();
  for (const auto& expand : registry.param_expanders) expand(registry);
  registry.param_expanders.clear();
  std::string last_suite;
  for (const TestInfo& test : registry.tests) {
    if (test.suite_name != last_suite) {
      std::printf("%s.\n", test.suite_name.c_str());
      last_suite = test.suite_name;
    }
    std::printf("  %s\n", test.test_name.c_str());
  }
}

}  // namespace internal

inline void InitGoogleTest(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const std::string filter_prefix = "--gtest_filter=";
    if (arg.rfind(filter_prefix, 0) == 0) {
      internal::FilterFlag() = arg.substr(filter_prefix.size());
    } else if (arg == "--gtest_list_tests") {
      internal::ListTests();
      std::exit(0);
    } else if (arg.rfind("--gtest_", 0) == 0) {
      // Unsupported gtest flag: accept and ignore, like gtest does for
      // flags compiled out of a build.
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

}  // namespace testing

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------
#define MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_ \
  switch (0)                              \
  case 0:                                 \
  default:  // NOLINT

#define MINIGTEST_NONFATAL_(summary)                                         \
  ::testing::internal::AssertHelper(false, __FILE__, __LINE__, (summary)) = \
      ::testing::Message()
#define MINIGTEST_FATAL_(summary)                                           \
  return ::testing::internal::AssertHelper(true, __FILE__, __LINE__,        \
                                           (summary)) = ::testing::Message()

#define MINIGTEST_ASSERT_(expression, on_failure)                      \
  MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_                                    \
  if (const ::testing::AssertionResult minigtest_ar = (expression))    \
    (void)++::testing::internal::Registry::Instance().checks_executed; \
  else                                                                 \
    on_failure(minigtest_ar.message())

#define MINIGTEST_BOOL_(condition, text, actual, expected, on_failure)     \
  MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_                                        \
  if (condition)                                                           \
    (void)++::testing::internal::Registry::Instance().checks_executed;     \
  else                                                                     \
    on_failure("Value of: " text "\n  Actual: " actual                     \
               "\nExpected: " expected)

#define EXPECT_TRUE(condition) \
  MINIGTEST_BOOL_(condition, #condition, "false", "true", MINIGTEST_NONFATAL_)
#define ASSERT_TRUE(condition) \
  MINIGTEST_BOOL_(condition, #condition, "false", "true", MINIGTEST_FATAL_)
#define EXPECT_FALSE(condition)                                  \
  MINIGTEST_BOOL_(!(condition), "!(" #condition ")", "false", "true", \
                  MINIGTEST_NONFATAL_)
#define ASSERT_FALSE(condition)                                  \
  MINIGTEST_BOOL_(!(condition), "!(" #condition ")", "false", "true", \
                  MINIGTEST_FATAL_)

#define MINIGTEST_CMP_(helper, lhs, rhs, on_failure)                         \
  MINIGTEST_ASSERT_(                                                         \
      ::testing::internal::helper(#lhs, #rhs, lhs, rhs), on_failure)

#define EXPECT_EQ(lhs, rhs) MINIGTEST_CMP_(CmpHelperEQ, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_EQ(lhs, rhs) MINIGTEST_CMP_(CmpHelperEQ, lhs, rhs, MINIGTEST_FATAL_)
#define EXPECT_NE(lhs, rhs) MINIGTEST_CMP_(CmpHelperNE, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_NE(lhs, rhs) MINIGTEST_CMP_(CmpHelperNE, lhs, rhs, MINIGTEST_FATAL_)
#define EXPECT_LT(lhs, rhs) MINIGTEST_CMP_(CmpHelperLT, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_LT(lhs, rhs) MINIGTEST_CMP_(CmpHelperLT, lhs, rhs, MINIGTEST_FATAL_)
#define EXPECT_LE(lhs, rhs) MINIGTEST_CMP_(CmpHelperLE, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_LE(lhs, rhs) MINIGTEST_CMP_(CmpHelperLE, lhs, rhs, MINIGTEST_FATAL_)
#define EXPECT_GT(lhs, rhs) MINIGTEST_CMP_(CmpHelperGT, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_GT(lhs, rhs) MINIGTEST_CMP_(CmpHelperGT, lhs, rhs, MINIGTEST_FATAL_)
#define EXPECT_GE(lhs, rhs) MINIGTEST_CMP_(CmpHelperGE, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_GE(lhs, rhs) MINIGTEST_CMP_(CmpHelperGE, lhs, rhs, MINIGTEST_FATAL_)

#define EXPECT_STREQ(lhs, rhs) \
  MINIGTEST_CMP_(CmpHelperSTREQ, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_STREQ(lhs, rhs) \
  MINIGTEST_CMP_(CmpHelperSTREQ, lhs, rhs, MINIGTEST_FATAL_)
#define EXPECT_DOUBLE_EQ(lhs, rhs) \
  MINIGTEST_CMP_(CmpHelperDoubleEQ, lhs, rhs, MINIGTEST_NONFATAL_)
#define ASSERT_DOUBLE_EQ(lhs, rhs) \
  MINIGTEST_CMP_(CmpHelperDoubleEQ, lhs, rhs, MINIGTEST_FATAL_)

#define MINIGTEST_THROW_(statement, expected_exception, on_failure)            \
  MINIGTEST_ASSERT_(                                                           \
      [&]() -> ::testing::AssertionResult {                                    \
        try {                                                                  \
          statement;                                                           \
        } catch (const expected_exception&) {                                  \
          return ::testing::AssertionSuccess();                                \
        } catch (...) {                                                        \
          return ::testing::AssertionFailure()                                 \
                 << "Expected: " #statement " throws " #expected_exception     \
                    ", actual: it throws a different type.";                   \
        }                                                                      \
        return ::testing::AssertionFailure()                                   \
               << "Expected: " #statement " throws " #expected_exception       \
                  ", actual: it throws nothing.";                              \
      }(),                                                                     \
      on_failure)

#define EXPECT_THROW(statement, expected_exception) \
  MINIGTEST_THROW_(statement, expected_exception, MINIGTEST_NONFATAL_)
#define ASSERT_THROW(statement, expected_exception) \
  MINIGTEST_THROW_(statement, expected_exception, MINIGTEST_FATAL_)

#define SUCCEED() ::testing::internal::MessageSink()
#define ADD_FAILURE() MINIGTEST_NONFATAL_("Failed")
#define FAIL() MINIGTEST_FATAL_("Failed")

#define MINIGTEST_CLASS_NAME_(suite, name) suite##_##name##_Test

#define MINIGTEST_TEST_(suite, name, parent)                                  \
  class MINIGTEST_CLASS_NAME_(suite, name) : public parent {                  \
   public:                                                                    \
    void TestBody() override;                                                 \
  };                                                                          \
  [[maybe_unused]] static const int minigtest_reg_##suite##_##name =          \
      ::testing::internal::RegisterTest(#suite, #name, []() -> ::testing::Test* { \
        return new MINIGTEST_CLASS_NAME_(suite, name)();                      \
      });                                                                     \
  void MINIGTEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) MINIGTEST_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) MINIGTEST_TEST_(fixture, name, fixture)

#define TEST_P(suite, name)                                                   \
  class MINIGTEST_CLASS_NAME_(suite, name) : public suite {                   \
   public:                                                                    \
    void TestBody() override;                                                 \
  };                                                                          \
  [[maybe_unused]] static const int minigtest_preg_##suite##_##name =         \
      ::testing::internal::ParamRegistry<suite>::Instance().AddTest(          \
          #suite, #name,                                                      \
          [](const suite::ParamType* param) -> ::testing::Test* {             \
            auto* test = new MINIGTEST_CLASS_NAME_(suite, name)();            \
            test->SetParam(param);                                            \
            return test;                                                      \
          });                                                                 \
  void MINIGTEST_CLASS_NAME_(suite, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, suite, ...)                          \
  [[maybe_unused]] static const int minigtest_inst_##prefix##_##suite =       \
      ::testing::internal::ParamRegistry<suite>::Instance().AddInstantiation( \
          #prefix, __VA_ARGS__)

#define RUN_ALL_TESTS() ::testing::internal::RunAllTests()
