// Shared test entry point. Compiles identically against the vendored
// minigtest shim and a real system GoogleTest (BLOCKDAG_SYSTEM_GTEST=ON).
#include <gtest/gtest.h>

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
