// Test helpers: compact construction of signed blocks and small DAGs.
#pragma once

#include <memory>
#include <vector>

#include "crypto/signature.h"
#include "dag/block.h"
#include "dag/dag.h"

namespace blockdag::testing {

// Builds properly signed blocks for a fixed server set.
class BlockForge {
 public:
  explicit BlockForge(std::uint32_t n_servers, std::uint64_t seed = 1)
      : sigs_(n_servers, seed) {}

  SignatureProvider& sigs() { return sigs_; }

  BlockPtr block(ServerId n, SeqNo k, std::vector<Hash256> preds,
                 std::vector<LabeledRequest> rs = {}) {
    const Hash256 ref = Block::compute_ref(n, k, preds, rs);
    Bytes sigma = sigs_.sign(n, ref.span());
    return std::make_shared<const Block>(n, k, std::move(preds), std::move(rs),
                                         std::move(sigma));
  }

  // A block with a deliberately bogus signature.
  BlockPtr forged(ServerId n, SeqNo k, std::vector<Hash256> preds,
                  std::vector<LabeledRequest> rs = {}) {
    return std::make_shared<const Block>(n, k, std::move(preds), std::move(rs),
                                         Bytes(32, 0xEE));
  }

 private:
  IdealSignatureProvider sigs_;
};

// The Figure 2 DAG: B1 = (s1, 0, []), B2 = (s2, 0, []),
// B3 = (s1, 1, [B1, B2]).
struct Figure2 {
  BlockPtr b1, b2, b3;

  explicit Figure2(BlockForge& forge) {
    b1 = forge.block(0, 0, {});
    b2 = forge.block(1, 0, {});
    b3 = forge.block(0, 1, {b1->ref(), b2->ref()});
  }

  BlockDag dag() const {
    BlockDag g;
    g.insert(b1);
    g.insert(b2);
    g.insert(b3);
    return g;
  }
};

}  // namespace blockdag::testing
