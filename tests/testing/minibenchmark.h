// minibenchmark — a vendored, single-header, google-benchmark-compatible
// shim, in the spirit of minigtest.h next door.
//
// Why it exists: the microbenches (bench_crypto, bench_dag, bench_interpret)
// are written against the google-benchmark API, but this tree must build
// and run with zero network access and no system benchmark package. The
// CMake option BLOCKDAG_SYSTEM_BENCHMARK=ON swaps in the real library
// (find_package); this header is the offline default and implements the
// subset of the API those benches use:
//
//   * BENCHMARK(fn) with ->Arg/->Args/->Range/->RangeMultiplier/->Unit/
//     ->Iterations/->MinTime chaining
//   * benchmark::State: for (auto _ : state), range(i), iterations(),
//     counters[...] (incl. Counter::kIsRate), SetBytesProcessed,
//     SetItemsProcessed, PauseTiming/ResumeTiming, SkipWithError
//   * benchmark::DoNotOptimize / ClobberMemory
//   * BENCHMARK_MAIN(), Initialize, RunSpecifiedBenchmarks, Shutdown
//   * flags: --benchmark_filter=<regex>, --benchmark_min_time=<t>[s|x],
//     --benchmark_format=console|json, --benchmark_out=<file>,
//     --benchmark_out_format=console|json, --benchmark_list_tests
//     (--benchmark_repetitions is accepted and ignored; repetitions = 1)
//
// The JSON it emits follows the google-benchmark layout ({"context": ...,
// "benchmarks": [...]}), with user counters flattened into each benchmark
// object, so downstream tooling (tools/bench_all.sh, EXPERIMENTS.md
// scripts) need not care which implementation produced a BENCH_*.json.
//
// Methodology: per (benchmark, args) pair the runner re-runs the measured
// loop with a growing iteration count until total measured real time
// reaches min_time (default 0.5s), then reports per-iteration real/CPU
// time from the final run only — the same adaptive scheme google-benchmark
// uses, minus statistical repetitions.
#pragma once

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>  // clock_gettime for CPU time
#endif

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

inline const char* time_unit_string(TimeUnit u) {
  switch (u) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "ns";
}

inline double time_unit_multiplier(TimeUnit u) {
  switch (u) {
    case kNanosecond: return 1e9;
    case kMicrosecond: return 1e6;
    case kMillisecond: return 1e3;
    case kSecond: return 1.0;
  }
  return 1e9;
}

class Counter {
 public:
  enum Flags : std::uint32_t {
    kDefaults = 0,
    kIsRate = 1u << 0,             // final value = value / elapsed real time
    kAvgIterations = 1u << 1,      // final value = value / iterations
    kIsIterationInvariant = 1u << 2,
  };

  double value = 0.0;
  Flags flags = kDefaults;

  Counter() = default;
  Counter(double v, Flags f = kDefaults) : value(v), flags(f) {}  // NOLINT
  operator double() const { return value; }                       // NOLINT
};

using UserCounters = std::map<std::string, Counter>;

// Keeps `value` observable to the optimizer without emitting any code.
template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <class Tp>
inline __attribute__((always_inline)) void DoNotOptimize(Tp& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

inline __attribute__((always_inline)) void ClobberMemory() {
  asm volatile("" : : : "memory");
}

namespace internal {

inline double cpu_now_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

struct Options {
  double min_time = 0.5;  // seconds of measured loop time per benchmark
  std::string filter;
  std::string format = "console";      // stdout report
  std::string out_path;                // optional file report
  std::string out_format = "json";     // format of out_path
  bool list_tests = false;
};

inline Options& options() {
  static Options opts;
  return opts;
}

}  // namespace internal

class State {
 public:
  State(std::vector<std::int64_t> args, std::uint64_t max_iterations)
      : max_iterations_(max_iterations), args_(std::move(args)) {}

  // Range-for protocol: `for (auto _ : state) { ... }` runs the hot loop
  // exactly max_iterations times with the timer running.
  struct StateIterator {
    struct Value {
      // Non-trivial ctor + dtor: silences -Wunused-variable and
      // -Wunused-but-set-variable on the conventional `for (auto _ : state)`.
      Value() {}
      ~Value() {}
    };
    State* parent = nullptr;
    std::uint64_t remaining = 0;

    Value operator*() const { return Value(); }
    StateIterator& operator++() {
      --remaining;
      return *this;
    }
    bool operator!=(const StateIterator&) {
      if (remaining > 0) return true;
      parent->FinishKeepRunning();
      return false;
    }
  };

  StateIterator begin() {
    StartKeepRunning();
    return StateIterator{this, max_iterations_};
  }
  StateIterator end() { return StateIterator{nullptr, 0}; }

  std::int64_t range(std::size_t i = 0) const { return args_.at(i); }
  std::uint64_t iterations() const { return max_iterations_; }

  void SetBytesProcessed(std::int64_t bytes) { bytes_processed_ = bytes; }
  std::int64_t bytes_processed() const { return bytes_processed_; }
  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  std::int64_t items_processed() const { return items_processed_; }

  void PauseTiming() {
    real_elapsed_ += std::chrono::duration<double>(Clock::now() - real_start_).count();
    cpu_elapsed_ += internal::cpu_now_seconds() - cpu_start_;
  }
  void ResumeTiming() {
    real_start_ = Clock::now();
    cpu_start_ = internal::cpu_now_seconds();
  }

  void SkipWithError(const char* message) {
    skipped_ = true;
    error_ = message ? message : "";
  }
  bool skipped() const { return skipped_; }
  const std::string& error_message() const { return error_; }

  UserCounters counters;

  // Shim internals (public so the runner can read results; benches should
  // not touch these).
  double measured_real_seconds() const { return real_elapsed_; }
  double measured_cpu_seconds() const { return cpu_elapsed_; }

 private:
  using Clock = std::chrono::steady_clock;

  void StartKeepRunning() {
    real_elapsed_ = 0.0;
    cpu_elapsed_ = 0.0;
    ResumeTiming();
  }
  void FinishKeepRunning() { PauseTiming(); }

  std::uint64_t max_iterations_ = 1;
  std::vector<std::int64_t> args_;
  std::int64_t bytes_processed_ = 0;
  std::int64_t items_processed_ = 0;
  double real_elapsed_ = 0.0;
  double cpu_elapsed_ = 0.0;
  Clock::time_point real_start_{};
  double cpu_start_ = 0.0;
  bool skipped_ = false;
  std::string error_;
};

namespace internal {

class Benchmark {
 public:
  Benchmark(const char* name, void (*fn)(State&)) : name_(name), fn_(fn) {}

  Benchmark* Arg(std::int64_t a) {
    arg_sets_.push_back({a});
    return this;
  }
  Benchmark* Args(const std::vector<std::int64_t>& a) {
    arg_sets_.push_back(a);
    return this;
  }
  // lo, then multiplier steps, then hi (like google-benchmark's AddRange;
  // non-positive lo steps through 1 so Range(0, n) terminates).
  Benchmark* Range(std::int64_t lo, std::int64_t hi) {
    std::int64_t a = lo;
    for (;;) {
      arg_sets_.push_back({std::min(a, hi)});
      if (a >= hi) break;
      a = a <= 0 ? 1 : a * range_multiplier_;
    }
    return this;
  }
  Benchmark* RangeMultiplier(int m) {
    range_multiplier_ = m > 1 ? m : 2;
    return this;
  }
  Benchmark* DenseRange(std::int64_t lo, std::int64_t hi, std::int64_t step = 1) {
    for (std::int64_t a = lo; a <= hi; a += step) arg_sets_.push_back({a});
    return this;
  }
  Benchmark* Unit(TimeUnit u) {
    unit_ = u;
    return this;
  }
  Benchmark* Iterations(std::int64_t n) {
    fixed_iterations_ = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    return this;
  }
  Benchmark* MinTime(double t) {
    min_time_override_ = t;
    return this;
  }
  // Accepted no-ops for API compatibility.
  Benchmark* Repetitions(int) { return this; }
  Benchmark* ReportAggregatesOnly(bool = true) { return this; }
  Benchmark* UseRealTime() { return this; }

  const std::string& name() const { return name_; }
  void (*fn() const)(State&) { return fn_; }
  const std::vector<std::vector<std::int64_t>>& arg_sets() const { return arg_sets_; }
  TimeUnit unit() const { return unit_; }
  std::uint64_t fixed_iterations() const { return fixed_iterations_; }
  double min_time_override() const { return min_time_override_; }

 private:
  std::string name_;
  void (*fn_)(State&);
  std::vector<std::vector<std::int64_t>> arg_sets_;
  int range_multiplier_ = 8;
  TimeUnit unit_ = kNanosecond;
  std::uint64_t fixed_iterations_ = 0;
  double min_time_override_ = -1.0;
};

inline std::vector<std::unique_ptr<Benchmark>>& registry() {
  static std::vector<std::unique_ptr<Benchmark>> benches;
  return benches;
}

inline Benchmark* RegisterBenchmarkInternal(Benchmark* b) {
  registry().emplace_back(b);
  return b;
}

// One measured (benchmark, args) run, post-calibration.
struct RunRow {
  std::string name;
  std::size_t family_index = 0;
  std::uint64_t iterations = 0;
  double real_total = 0.0;  // seconds across all iterations of final run
  double cpu_total = 0.0;
  TimeUnit unit = kNanosecond;
  std::int64_t bytes_processed = 0;
  std::int64_t items_processed = 0;
  UserCounters counters;
  bool skipped = false;
  std::string error;
};

inline std::string run_name(const Benchmark& b, const std::vector<std::int64_t>& args) {
  std::string n = b.name();
  for (std::int64_t a : args) n += "/" + std::to_string(a);
  return n;
}

// value → "12.3k"-style SI rendering for console counters.
inline std::string humanize(double v) {
  const char* suffixes[] = {"", "k", "M", "G", "T"};
  int s = 0;
  double mag = v < 0 ? -v : v;
  while (mag >= 1000.0 && s < 4) {
    mag /= 1000.0;
    v /= 1000.0;
    ++s;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g%s", v, suffixes[s]);
  return buf;
}

inline void print_console_header(std::FILE* f, std::size_t name_width) {
  const std::string dashes(name_width + 38, '-');
  std::fprintf(f, "%s\n", dashes.c_str());
  std::fprintf(f, "%-*s %13s %13s %10s\n", static_cast<int>(name_width),
               "Benchmark", "Time", "CPU", "Iterations");
  std::fprintf(f, "%s\n", dashes.c_str());
}

inline void print_console_row(std::FILE* f, const RunRow& row, std::size_t name_width) {
  if (row.skipped) {
    std::fprintf(f, "%-*s SKIPPED: %s\n", static_cast<int>(name_width),
                 row.name.c_str(), row.error.c_str());
    return;
  }
  const double mult = time_unit_multiplier(row.unit);
  const double iters = static_cast<double>(row.iterations ? row.iterations : 1);
  char time_buf[64], cpu_buf[64];
  std::snprintf(time_buf, sizeof(time_buf), "%.3g %s", row.real_total / iters * mult,
                time_unit_string(row.unit));
  std::snprintf(cpu_buf, sizeof(cpu_buf), "%.3g %s", row.cpu_total / iters * mult,
                time_unit_string(row.unit));
  std::fprintf(f, "%-*s %13s %13s %10" PRIu64, static_cast<int>(name_width),
               row.name.c_str(), time_buf, cpu_buf, row.iterations);
  if (row.bytes_processed > 0) {
    std::fprintf(f, " bytes_per_second=%s/s",
                 humanize(static_cast<double>(row.bytes_processed) /
                          (row.real_total > 0 ? row.real_total : 1)).c_str());
  }
  if (row.items_processed > 0) {
    std::fprintf(f, " items_per_second=%s/s",
                 humanize(static_cast<double>(row.items_processed) /
                          (row.real_total > 0 ? row.real_total : 1)).c_str());
  }
  for (const auto& [cname, counter] : row.counters) {
    if (counter.flags & Counter::kIsRate) {
      std::fprintf(f, " %s=%s/s", cname.c_str(),
                   humanize(counter.value / (row.real_total > 0 ? row.real_total : 1)).c_str());
    } else {
      std::fprintf(f, " %s=%s", cname.c_str(), humanize(counter.value).c_str());
    }
  }
  std::fprintf(f, "\n");
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void print_json(std::FILE* f, const std::vector<RunRow>& rows,
                       const char* executable) {
  char date[64] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm* tm = std::localtime(&now)) {
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z", tm);
  }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"date\": \"%s\",\n", date);
  std::fprintf(f, "    \"executable\": \"%s\",\n", json_escape(executable).c_str());
  std::fprintf(f, "    \"num_cpus\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "    \"mhz_per_cpu\": 0,\n");
  std::fprintf(f, "    \"cpu_scaling_enabled\": false,\n");
  std::fprintf(f, "    \"caches\": [],\n");
  std::fprintf(f, "    \"library_build_type\": \"minibenchmark-shim\"\n");
  std::fprintf(f, "  },\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& row = rows[i];
    const double mult = time_unit_multiplier(row.unit);
    const double iters = static_cast<double>(row.iterations ? row.iterations : 1);
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", json_escape(row.name).c_str());
    std::fprintf(f, "      \"family_index\": %zu,\n", row.family_index);
    std::fprintf(f, "      \"run_name\": \"%s\",\n", json_escape(row.name).c_str());
    std::fprintf(f, "      \"run_type\": \"iteration\",\n");
    std::fprintf(f, "      \"repetitions\": 1,\n");
    std::fprintf(f, "      \"repetition_index\": 0,\n");
    std::fprintf(f, "      \"threads\": 1,\n");
    if (row.skipped) {
      std::fprintf(f, "      \"error_occurred\": true,\n");
      std::fprintf(f, "      \"error_message\": \"%s\",\n", json_escape(row.error).c_str());
    }
    std::fprintf(f, "      \"iterations\": %" PRIu64 ",\n", row.iterations);
    std::fprintf(f, "      \"real_time\": %.9g,\n", row.real_total / iters * mult);
    std::fprintf(f, "      \"cpu_time\": %.9g,\n", row.cpu_total / iters * mult);
    if (row.bytes_processed > 0) {
      std::fprintf(f, "      \"bytes_per_second\": %.9g,\n",
                   static_cast<double>(row.bytes_processed) /
                       (row.real_total > 0 ? row.real_total : 1));
    }
    if (row.items_processed > 0) {
      std::fprintf(f, "      \"items_per_second\": %.9g,\n",
                   static_cast<double>(row.items_processed) /
                       (row.real_total > 0 ? row.real_total : 1));
    }
    for (const auto& [cname, counter] : row.counters) {
      const double v = (counter.flags & Counter::kIsRate)
                           ? counter.value / (row.real_total > 0 ? row.real_total : 1)
                           : (counter.flags & Counter::kAvgIterations)
                                 ? counter.value / iters
                                 : counter.value;
      std::fprintf(f, "      \"%s\": %.9g,\n", json_escape(cname).c_str(), v);
    }
    std::fprintf(f, "      \"time_unit\": \"%s\"\n", time_unit_string(row.unit));
    std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

inline std::string& executable_name() {
  static std::string name = "benchmark";
  return name;
}

inline bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace internal

inline void Initialize(int* argc, char** argv) {
  if (*argc > 0) internal::executable_name() = argv[0];
  internal::Options& opts = internal::options();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (internal::parse_flag(arg, "--benchmark_min_time", &value)) {
      // Accept google's "0.25s"/"3x" suffixed forms as well as a bare float.
      if (!value.empty() && (value.back() == 's' || value.back() == 'x')) value.pop_back();
      opts.min_time = std::strtod(value.c_str(), nullptr);
      if (opts.min_time <= 0) opts.min_time = 0.5;
    } else if (internal::parse_flag(arg, "--benchmark_filter", &value)) {
      opts.filter = value;
    } else if (internal::parse_flag(arg, "--benchmark_format", &value)) {
      opts.format = value;
    } else if (internal::parse_flag(arg, "--benchmark_out", &value) ||
               internal::parse_flag(arg, "--json", &value)) {
      opts.out_path = value;
    } else if (internal::parse_flag(arg, "--benchmark_out_format", &value)) {
      opts.out_format = value;
    } else if (std::strcmp(arg, "--benchmark_list_tests") == 0 ||
               std::strcmp(arg, "--benchmark_list_tests=true") == 0) {
      opts.list_tests = true;
    } else if (internal::parse_flag(arg, "--benchmark_repetitions", &value) ||
               internal::parse_flag(arg, "--benchmark_color", &value) ||
               internal::parse_flag(arg, "--benchmark_counters_tabular", &value)) {
      // Accepted and ignored.
    } else if (std::strncmp(arg, "--benchmark_", 12) == 0) {
      std::fprintf(stderr, "minibenchmark: ignoring unsupported flag %s\n", arg);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

inline bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "minibenchmark: unrecognized argument %s\n", argv[i]);
  }
  return argc > 1;
}

inline std::size_t RunSpecifiedBenchmarks() {
  const internal::Options& opts = internal::options();

  // Expand every registered family into (benchmark, args) runs.
  struct Pending {
    internal::Benchmark* bench;
    std::vector<std::int64_t> args;
    std::string name;
    std::size_t family_index;
  };
  std::vector<Pending> pending;
  std::regex filter;
  bool has_filter = false;
  if (!opts.filter.empty()) {
    filter = std::regex(opts.filter);
    has_filter = true;
  }
  std::size_t family = 0;
  for (const auto& bench : internal::registry()) {
    std::vector<std::vector<std::int64_t>> arg_sets = bench->arg_sets();
    if (arg_sets.empty()) arg_sets.push_back({});
    for (const auto& args : arg_sets) {
      std::string name = internal::run_name(*bench, args);
      if (has_filter && !std::regex_search(name, filter)) continue;
      pending.push_back({bench.get(), args, std::move(name), family});
    }
    ++family;
  }

  if (opts.list_tests) {
    for (const Pending& p : pending) std::printf("%s\n", p.name.c_str());
    return pending.size();
  }

  std::size_t name_width = std::strlen("Benchmark");
  for (const Pending& p : pending) name_width = std::max(name_width, p.name.size());
  const bool console = opts.format != "json";
  if (console) internal::print_console_header(stdout, name_width);

  std::vector<internal::RunRow> rows;
  for (const Pending& p : pending) {
    const double min_time =
        p.bench->min_time_override() > 0 ? p.bench->min_time_override() : opts.min_time;
    std::uint64_t iters = p.bench->fixed_iterations() ? p.bench->fixed_iterations() : 1;
    internal::RunRow row;
    for (;;) {
      State state(p.args, iters);
      p.bench->fn()(state);
      row.name = p.name;
      row.family_index = p.family_index;
      row.iterations = iters;
      row.real_total = state.measured_real_seconds();
      row.cpu_total = state.measured_cpu_seconds();
      row.unit = p.bench->unit();
      row.bytes_processed = state.bytes_processed();
      row.items_processed = state.items_processed();
      row.counters = state.counters;
      row.skipped = state.skipped();
      row.error = state.error_message();
      if (row.skipped || p.bench->fixed_iterations() || row.real_total >= min_time ||
          iters >= (1ull << 30)) {
        break;
      }
      // Grow towards min_time, with head-room for noise; never less than 2x.
      double mult = min_time / std::max(row.real_total, 1e-9) * 1.4;
      mult = std::min(std::max(mult, 2.0), 10.0);
      iters = static_cast<std::uint64_t>(static_cast<double>(iters) * mult) + 1;
    }
    if (console) internal::print_console_row(stdout, row, name_width);
    rows.push_back(std::move(row));
  }

  if (!console) internal::print_json(stdout, rows, internal::executable_name().c_str());
  if (!opts.out_path.empty()) {
    std::FILE* f = std::fopen(opts.out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "minibenchmark: cannot open %s\n", opts.out_path.c_str());
    } else {
      if (opts.out_format == "console") {
        internal::print_console_header(f, name_width);
        for (const auto& row : rows) internal::print_console_row(f, row, name_width);
      } else {
        internal::print_json(f, rows, internal::executable_name().c_str());
      }
      std::fclose(f);
    }
  }
  return rows.size();
}

inline void Shutdown() {}

}  // namespace benchmark

#define MINIBENCHMARK_CONCAT_(a, b) a##b
#define MINIBENCHMARK_NAME_(line) MINIBENCHMARK_CONCAT_(minibenchmark_registration_, line)

#define BENCHMARK(fn)                                                        \
  [[maybe_unused]] static ::benchmark::internal::Benchmark*                  \
      MINIBENCHMARK_NAME_(__LINE__) =                                        \
          ::benchmark::internal::RegisterBenchmarkInternal(                  \
              new ::benchmark::internal::Benchmark(#fn, fn))

#define BENCHMARK_MAIN()                                            \
  int main(int argc, char** argv) {                                 \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {     \
      return 1; /* match real google-benchmark's failure mode */    \
    }                                                               \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }
