// Maps `#include <benchmark/benchmark.h>` onto the vendored minibenchmark
// shim. The `blockdag_benchmark` interface target in CMakeLists.txt puts
// this directory on the include path when BLOCKDAG_SYSTEM_BENCHMARK is OFF
// (the offline default).
#pragma once
#include "../../minibenchmark.h"
