// Random block-DAG generator for property tests.
//
// Generates DAGs that look like the output of honest gossip: per-server
// chains with parent links, cross-references to other servers' blocks
// following the reference-once discipline (Lemma A.6), and broadcast
// requests sprinkled into early blocks. Randomness is fully seeded.
#pragma once

#include <map>
#include <vector>

#include "dag/dag.h"
#include "protocols/brb.h"
#include "testing/builders.h"
#include "util/rng.h"

namespace blockdag::testing {

struct RandomDagConfig {
  std::uint32_t n_servers = 4;
  std::uint32_t rounds = 8;
  // Probability a server produces a block in a round.
  double block_probability = 0.8;
  // Probability an available (unreferenced) foreign block gets referenced.
  double reference_probability = 0.7;
  // Number of BRB broadcast requests inscribed into random early blocks.
  std::uint32_t broadcasts = 2;
};

struct RandomDag {
  BlockDag dag;
  // label → (origin server, value) of each inscribed broadcast.
  std::map<Label, std::pair<ServerId, std::uint8_t>> broadcasts;
};

inline RandomDag make_random_dag(BlockForge& forge, const RandomDagConfig& cfg,
                                 std::uint64_t seed) {
  Rng rng(seed);
  RandomDag out;

  // Per server: ref of own previous block; set of foreign blocks already
  // referenced; foreign blocks seen but not yet referenced.
  std::vector<BlockPtr> parents(cfg.n_servers);
  std::vector<std::vector<Hash256>> unreferenced(cfg.n_servers);
  std::vector<SeqNo> next_k(cfg.n_servers, 0);
  std::uint32_t broadcasts_left = cfg.broadcasts;
  Label next_label = 1;

  for (std::uint32_t round = 0; round < cfg.rounds; ++round) {
    std::vector<BlockPtr> created;
    for (ServerId s = 0; s < cfg.n_servers; ++s) {
      const bool must = round + 1 == cfg.rounds;  // last round: all speak
      if (!must && !rng.chance(cfg.block_probability)) continue;

      std::vector<Hash256> preds;
      if (parents[s]) preds.push_back(parents[s]->ref());
      std::vector<Hash256> still_unreferenced;
      for (const Hash256& ref : unreferenced[s]) {
        if (must || rng.chance(cfg.reference_probability)) {
          preds.push_back(ref);
        } else {
          still_unreferenced.push_back(ref);
        }
      }
      unreferenced[s] = std::move(still_unreferenced);

      std::vector<LabeledRequest> rs;
      if (broadcasts_left > 0 && rng.chance(0.5)) {
        --broadcasts_left;
        const auto value = static_cast<std::uint8_t>(rng.below(200));
        rs.push_back({next_label, brb::make_broadcast(Bytes{value})});
        out.broadcasts[next_label] = {s, value};
        ++next_label;
      }

      BlockPtr block = forge.block(s, next_k[s]++, std::move(preds), std::move(rs));
      out.dag.insert(block);
      parents[s] = block;
      created.push_back(std::move(block));
    }
    // Everyone "receives" this round's blocks before the next round.
    for (const BlockPtr& b : created) {
      for (ServerId s = 0; s < cfg.n_servers; ++s) {
        if (s != b->n()) unreferenced[s].push_back(b->ref());
      }
    }
  }
  return out;
}

// An ancestor-closed subset of `dag` containing roughly `fraction` of its
// blocks (taken as a prefix of the topological order — always closed).
inline BlockDag prefix_of(const BlockDag& dag, double fraction) {
  BlockDag out;
  const auto& order = dag.topological_order();
  const auto take = static_cast<std::size_t>(static_cast<double>(order.size()) * fraction);
  for (std::size_t i = 0; i < take; ++i) out.insert(order[i]);
  return out;
}

}  // namespace blockdag::testing
