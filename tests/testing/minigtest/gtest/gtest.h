// Maps `#include <gtest/gtest.h>` onto the vendored minigtest shim. The
// `gtest` interface target in CMakeLists.txt puts this directory on the
// include path when BLOCKDAG_SYSTEM_GTEST is OFF (the offline default).
#pragma once
#include "../../minigtest.h"
