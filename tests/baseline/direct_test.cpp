#include "baseline/direct_node.h"

#include <gtest/gtest.h>

#include "protocols/brb.h"
#include "protocols/pbft_lite.h"
#include "sim/network.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

struct DirectRig {
  Scheduler sched;
  IdealSignatureProvider sigs;
  SimNetwork net;
  std::vector<std::unique_ptr<DirectProtocolNode>> nodes;

  DirectRig(const ProtocolFactory& factory, std::uint32_t n,
            NetworkConfig net_cfg = {})
      : sigs(n, 3), net(sched, n, net_cfg) {
    for (ServerId s = 0; s < n; ++s) {
      nodes.push_back(
          std::make_unique<DirectProtocolNode>(s, sched, net, sigs, factory, n));
    }
  }
};

TEST(DirectBaseline, BrbDeliversEverywhere) {
  brb::BrbFactory factory;
  DirectRig rig(factory, 4);
  rig.nodes[0]->request(1, brb::make_broadcast(val(42)));
  rig.sched.run();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_EQ(rig.nodes[s]->indications().size(), 1u);
    EXPECT_EQ(brb::parse_deliver(rig.nodes[s]->indications()[0].indication), val(42));
  }
}

TEST(DirectBaseline, EveryWireMessageIsSignedAndVerified) {
  brb::BrbFactory factory;
  DirectRig rig(factory, 4);
  rig.sigs.counters().reset();
  rig.nodes[0]->request(1, brb::make_broadcast(val(1)));
  rig.sched.run();
  // Per-message signing: one sign per remote message; one verify each.
  const auto& wire = rig.net.metrics();
  EXPECT_EQ(rig.sigs.counters().signs,
            wire.messages[static_cast<int>(WireKind::kProtocol)]);
  EXPECT_EQ(rig.sigs.counters().verifies,
            wire.messages[static_cast<int>(WireKind::kProtocol)]);
  EXPECT_GT(rig.sigs.counters().signs, 0u);
}

TEST(DirectBaseline, WireCostScalesQuadratically) {
  // BRB over a direct network sends O(n²) messages per broadcast — the
  // baseline the block DAG amortizes away.
  const auto wire_messages = [](std::uint32_t n) {
    brb::BrbFactory factory;
    DirectRig rig(factory, n);
    rig.nodes[0]->request(1, brb::make_broadcast(val(1)));
    rig.sched.run();
    return rig.net.metrics().total_messages();
  };
  const auto m4 = wire_messages(4);
  const auto m8 = wire_messages(8);
  EXPECT_GT(m8, 3 * m4);  // ≈ 4x for 2x servers
}

TEST(DirectBaseline, ForgedTrafficIgnored) {
  brb::BrbFactory factory;
  DirectRig rig(factory, 4);
  // Deliver random bytes and a message with a broken signature.
  rig.net.send(3, 0, WireKind::kProtocol, Bytes{1, 2, 3});
  rig.sched.run();
  EXPECT_TRUE(rig.nodes[0]->indications().empty());
}

TEST(DirectBaseline, PbftDecidesDirectly) {
  pbft::PbftFactory factory;
  DirectRig rig(factory, 4);
  rig.nodes[0]->request(9, pbft::make_propose(val(5)));
  rig.sched.run();
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_EQ(rig.nodes[s]->indications().size(), 1u);
    EXPECT_EQ(pbft::parse_decide(rig.nodes[s]->indications()[0].indication), val(5));
  }
}

TEST(DirectBaseline, SelfMessagesSkipTheWire) {
  brb::BrbFactory factory;
  DirectRig rig(factory, 4);
  rig.nodes[0]->request(1, brb::make_broadcast(val(1)));
  rig.sched.run();
  // messages_sent counts protocol messages incl. self; wire counts exclude
  // self-deliveries.
  EXPECT_GT(rig.nodes[0]->messages_sent(),
            0u);
  EXPECT_LT(rig.net.metrics().total_messages(),
            rig.nodes[0]->messages_sent() + rig.nodes[1]->messages_sent() +
                rig.nodes[2]->messages_sent() + rig.nodes[3]->messages_sent());
}

}  // namespace
}  // namespace blockdag
