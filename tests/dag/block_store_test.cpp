#include "dag/block_store.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;

TEST(BlockStore, PutGetRoundTrip) {
  BlockForge forge(4);
  BlockStore store;
  const BlockPtr b = forge.block(0, 0, {});
  store.put(b);
  EXPECT_EQ(store.get(b->ref()), b);
  EXPECT_TRUE(store.contains(b->ref()));
  EXPECT_EQ(store.size(), 1u);
}

TEST(BlockStore, PutIsIdempotentByContentAddress) {
  BlockForge forge(4);
  BlockStore store;
  const BlockPtr b = forge.block(0, 0, {});
  const BlockPtr same = std::make_shared<const Block>(*b);
  EXPECT_EQ(store.put(b), b);
  EXPECT_EQ(store.put(same), b);  // returns the first stored pointer
  EXPECT_EQ(store.size(), 1u);
}

TEST(BlockStore, MissingReturnsNull) {
  BlockStore store;
  EXPECT_EQ(store.get(Hash256::of(Bytes{1})), nullptr);
  EXPECT_FALSE(store.contains(Hash256::of(Bytes{1})));
}

TEST(BlockStore, StoredBytesTracksFootprint) {
  BlockForge forge(4);
  BlockStore store;
  EXPECT_EQ(store.stored_bytes(), 0u);
  const BlockPtr b = forge.block(0, 0, {}, {{1, Bytes(100)}});
  store.put(b);
  const auto after_put = store.stored_bytes();
  EXPECT_GE(after_put, 100u);
  store.erase(b->ref());
  EXPECT_EQ(store.stored_bytes(), 0u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(BlockStore, EraseMissingIsFalse) {
  BlockStore store;
  EXPECT_FALSE(store.erase(Hash256::of(Bytes{1})));
}

TEST(BlockStore, Iterable) {
  BlockForge forge(4);
  BlockStore store;
  store.put(forge.block(0, 0, {}));
  store.put(forge.block(1, 0, {}));
  std::size_t n = 0;
  for (const auto& [ref, block] : store) {
    EXPECT_EQ(ref, block->ref());
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

}  // namespace
}  // namespace blockdag
