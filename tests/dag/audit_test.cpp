#include "dag/audit.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;

TEST(Audit, CleanDagHasNoSuspects) {
  BlockForge forge(4);
  BlockDag dag;
  std::vector<Hash256> genesis;
  for (ServerId s = 0; s < 4; ++s) {
    const BlockPtr b = forge.block(s, 0, {});
    dag.insert(b);
    genesis.push_back(b->ref());
  }
  for (ServerId s = 0; s < 4; ++s) {
    std::vector<Hash256> preds{genesis[s]};
    for (ServerId o = 0; o < 4; ++o)
      if (o != s) preds.push_back(genesis[o]);
    dag.insert(forge.block(s, 1, preds));
  }

  const AuditReport report = audit(dag);
  EXPECT_TRUE(report.suspects().empty());
  EXPECT_TRUE(report.dangling_refs.empty());
  EXPECT_TRUE(report.equivocations.empty());
  EXPECT_EQ(report.builders.size(), 4u);
  for (const auto& [builder, br] : report.builders) {
    (void)builder;
    EXPECT_EQ(br.blocks, 2u);
    EXPECT_EQ(br.max_seqno, 1u);
    EXPECT_EQ(br.seqno_gaps, 0u);
  }
}

TEST(Audit, DetectsEquivocation) {
  BlockForge forge(4);
  BlockDag dag;
  dag.insert(forge.block(0, 0, {}));
  dag.insert(forge.block(0, 0, {}, {{1, {1}}}));  // sibling at k=0
  const AuditReport report = audit(dag);
  EXPECT_EQ(report.suspects(), std::vector<ServerId>{0});
  EXPECT_EQ(report.builders.at(0).equivocation_slots, 1u);
  ASSERT_EQ(report.equivocations.size(), 1u);
  EXPECT_EQ(report.equivocations[0].offender, 0u);
}

TEST(Audit, DetectsDuplicateReferences) {
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b0 = forge.block(0, 0, {});
  dag.insert(b0);
  dag.insert(forge.block(1, 0, {b0->ref(), b0->ref()}));
  const AuditReport report = audit(dag);
  EXPECT_TRUE(report.builders.at(1).duplicate_references);
  EXPECT_EQ(report.suspects(), std::vector<ServerId>{1});
}

TEST(Audit, DetectsDoubleCountedReference) {
  // Server 1 references b0 from two different own blocks — violating the
  // reference-once discipline (Lemma A.6).
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b0 = forge.block(0, 0, {});
  dag.insert(b0);
  const BlockPtr b1 = forge.block(1, 0, {b0->ref()});
  dag.insert(b1);
  dag.insert(forge.block(1, 1, {b1->ref(), b0->ref()}));
  const AuditReport report = audit(dag);
  EXPECT_TRUE(report.builders.at(1).double_counted_reference);
  EXPECT_FALSE(report.builders.at(0).double_counted_reference);
}

TEST(Audit, DetectsSeqNoGaps) {
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b0 = forge.block(0, 0, {});
  dag.insert(b0);
  dag.insert(forge.block(0, 5, {b0->ref()}));  // gap: 1..4 missing
  const AuditReport report = audit(dag);
  EXPECT_EQ(report.builders.at(0).seqno_gaps, 4u);
}

TEST(Audit, SummaryMentionsOffenders) {
  BlockForge forge(4);
  BlockDag dag;
  dag.insert(forge.block(2, 0, {}));
  dag.insert(forge.block(2, 0, {}, {{9, {9}}}));
  const std::string s = audit(dag).summary();
  EXPECT_NE(s.find("EQUIVOCATED"), std::string::npos);
  EXPECT_NE(s.find("s2"), std::string::npos);
}

TEST(Audit, EmptyDag) {
  const AuditReport report = audit(BlockDag{});
  EXPECT_TRUE(report.builders.empty());
  EXPECT_TRUE(report.suspects().empty());
}

}  // namespace
}  // namespace blockdag
