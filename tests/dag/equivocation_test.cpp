#include "dag/equivocation.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;

TEST(Equivocation, Figure3Detected) {
  // Figure 3: ˇs1 equivocates on B3 and B4 — same (n, k), different blocks.
  BlockForge forge(4);
  const BlockPtr b1 = forge.block(0, 0, {});
  const BlockPtr b2 = forge.block(1, 0, {});
  const BlockPtr b3 = forge.block(0, 1, {b1->ref(), b2->ref()});
  const BlockPtr b4 = forge.block(0, 1, {b1->ref(), b2->ref()}, {{1, {1}}});

  EquivocationDetector detector;
  EXPECT_FALSE(detector.observe(b1).has_value());
  EXPECT_FALSE(detector.observe(b2).has_value());
  EXPECT_FALSE(detector.observe(b3).has_value());
  const auto proof = detector.observe(b4);
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->offender, 0u);
  EXPECT_EQ(proof->k, 1u);
  EXPECT_TRUE(EquivocationDetector::proof_is_valid(*proof));
  EXPECT_TRUE(detector.is_offender(0));
  EXPECT_FALSE(detector.is_offender(1));
}

TEST(Equivocation, SameBlockTwiceIsNotEquivocation) {
  BlockForge forge(4);
  const BlockPtr b = forge.block(0, 0, {});
  EquivocationDetector detector;
  EXPECT_FALSE(detector.observe(b).has_value());
  EXPECT_FALSE(detector.observe(b).has_value());
  EXPECT_TRUE(detector.proofs().empty());
}

TEST(Equivocation, DistinctSlotsNoConflict) {
  BlockForge forge(4);
  const BlockPtr b0 = forge.block(0, 0, {});
  const BlockPtr b1 = forge.block(0, 1, {b0->ref()});
  EquivocationDetector detector;
  EXPECT_FALSE(detector.observe(b0).has_value());
  EXPECT_FALSE(detector.observe(b1).has_value());
}

TEST(Equivocation, SameSlotDifferentServersNoConflict) {
  BlockForge forge(4);
  EquivocationDetector detector;
  EXPECT_FALSE(detector.observe(forge.block(0, 0, {})).has_value());
  EXPECT_FALSE(detector.observe(forge.block(1, 0, {})).has_value());
}

TEST(Equivocation, ProofValidationRejectsMismatch) {
  BlockForge forge(4);
  EquivocationProof bogus;
  bogus.offender = 0;
  bogus.k = 0;
  bogus.first = forge.block(0, 0, {});
  bogus.second = bogus.first;  // same block: not a proof
  EXPECT_FALSE(EquivocationDetector::proof_is_valid(bogus));

  bogus.second = forge.block(1, 0, {});  // different builder: not a proof
  EXPECT_FALSE(EquivocationDetector::proof_is_valid(bogus));
}

TEST(Equivocation, MultipleOffendersTracked) {
  BlockForge forge(4);
  EquivocationDetector detector;
  detector.observe(forge.block(0, 0, {}));
  detector.observe(forge.block(0, 0, {}, {{1, {1}}}));
  detector.observe(forge.block(2, 3, {}));
  detector.observe(forge.block(2, 3, {}, {{1, {2}}}));
  EXPECT_EQ(detector.proofs().size(), 2u);
  EXPECT_TRUE(detector.is_offender(0));
  EXPECT_TRUE(detector.is_offender(2));
}

}  // namespace
}  // namespace blockdag
