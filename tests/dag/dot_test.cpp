#include "dag/dot.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;
using testing::Figure2;

TEST(Dot, Figure2Renders) {
  BlockForge forge(4);
  Figure2 fig(forge);
  const std::string dot = to_dot(fig.dag());
  EXPECT_NE(dot.find("digraph blockdag"), std::string::npos);
  // Three nodes, two edges.
  EXPECT_NE(dot.find("b" + fig.b1->ref().short_hex()), std::string::npos);
  EXPECT_NE(dot.find("b" + fig.b2->ref().short_hex()), std::string::npos);
  EXPECT_NE(dot.find("b" + fig.b1->ref().short_hex() + " -> b" +
                     fig.b3->ref().short_hex()),
            std::string::npos);
  // Parent edge B1 → B3 is emphasized.
  EXPECT_NE(dot.find("[penwidth=2]"), std::string::npos);
  // One cluster per builder.
  EXPECT_NE(dot.find("cluster_s0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_s1"), std::string::npos);
}

TEST(Dot, EquivocationMarkedRed) {
  BlockForge forge(4);
  BlockDag dag;
  dag.insert(forge.block(0, 0, {}));
  dag.insert(forge.block(0, 0, {}, {{1, {1}}}));
  const std::string dot = to_dot(dag);
  EXPECT_NE(dot.find("color=red"), std::string::npos);

  DotOptions plain;
  plain.mark_equivocations = false;
  EXPECT_EQ(to_dot(dag, plain).find("color=red"), std::string::npos);
}

TEST(Dot, RequestCountsShown) {
  BlockForge forge(4);
  BlockDag dag;
  dag.insert(forge.block(0, 0, {}, {{1, {1}}, {2, {2}}}));
  EXPECT_NE(to_dot(dag).find("rs=2"), std::string::npos);
  DotOptions no_rs;
  no_rs.show_request_counts = false;
  EXPECT_EQ(to_dot(dag, no_rs).find("rs=2"), std::string::npos);
}

TEST(Dot, EmptyDagStillValid) {
  const std::string dot = to_dot(BlockDag{});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace blockdag
