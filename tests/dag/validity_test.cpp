#include "dag/validity.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;

struct ValidityTest : ::testing::Test {
  BlockForge forge{4};
  BlockDag dag;
  Validator validator{forge.sigs()};
};

TEST_F(ValidityTest, GenesisIsValid) {
  EXPECT_EQ(validator.check(*forge.block(0, 0, {}), dag), ValidityError::kOk);
}

TEST_F(ValidityTest, BadSignatureRejected) {
  EXPECT_EQ(validator.check(*forge.forged(0, 0, {}), dag),
            ValidityError::kBadSignature);
}

TEST_F(ValidityTest, SignatureFromWrongServerRejected) {
  // Block claims n=1 but is signed by 0's key.
  const Hash256 ref = Block::compute_ref(1, 0, {}, {});
  Block block(1, 0, {}, {}, forge.sigs().sign(0, ref.span()));
  EXPECT_EQ(validator.check(block, dag), ValidityError::kBadSignature);
}

TEST_F(ValidityTest, MissingPredDetected) {
  const BlockPtr ghost = forge.block(1, 0, {});
  const BlockPtr b = forge.block(0, 0, {ghost->ref()});
  EXPECT_EQ(validator.check(*b, dag), ValidityError::kMissingPred);
}

TEST_F(ValidityTest, ChainWithParentIsValid) {
  const BlockPtr b0 = forge.block(0, 0, {});
  dag.insert(b0);
  const BlockPtr b1 = forge.block(0, 1, {b0->ref()});
  EXPECT_EQ(validator.check(*b1, dag), ValidityError::kOk);
}

TEST_F(ValidityTest, NonGenesisWithoutParentRejected) {
  // Definition 3.3(ii)(b): a non-genesis block needs exactly one parent.
  const BlockPtr other = forge.block(1, 0, {});
  dag.insert(other);
  EXPECT_EQ(validator.check(*forge.block(0, 1, {other->ref()}), dag),
            ValidityError::kNoParent);
  EXPECT_EQ(validator.check(*forge.block(0, 1, {}), dag), ValidityError::kNoParent);
}

TEST_F(ValidityTest, GenesisWithOwnPredRejected) {
  // A genesis block (k=0) cannot have a parent: 0 is minimal in N0. Any
  // pred by the same builder disqualifies it.
  const BlockPtr b0 = forge.block(0, 5, {});  // (invalid itself, but present)
  dag.insert(b0);
  EXPECT_EQ(validator.check(*forge.block(0, 0, {b0->ref()}), dag),
            ValidityError::kGenesisWithParent);
}

TEST_F(ValidityTest, TwoParentsRejected) {
  // A byzantine server builds two k=0 blocks and then tries to 'join' the
  // split chains — Definition 3.3(ii) forbids exactly this (Section 3:
  // "their successors will remain split").
  const BlockPtr a = forge.block(0, 0, {});
  const BlockPtr b = forge.block(0, 0, {}, {{1, {1}}});  // sibling, differs
  dag.insert(a);
  dag.insert(b);
  EXPECT_EQ(validator.check(*forge.block(0, 1, {a->ref(), b->ref()}), dag),
            ValidityError::kMultipleParents);
}

TEST_F(ValidityTest, ConsecutiveSeqNoEnforced) {
  const BlockPtr b0 = forge.block(0, 0, {});
  dag.insert(b0);
  EXPECT_EQ(validator.check(*forge.block(0, 2, {b0->ref()}), dag),
            ValidityError::kBadParentSeqNo);
}

TEST_F(ValidityTest, IncreasingModeAllowsGaps) {
  // §7 extension: merely increasing sequence numbers ease crash recovery.
  Validator increasing(forge.sigs(), SeqNoMode::kIncreasing);
  const BlockPtr b0 = forge.block(0, 0, {});
  dag.insert(b0);
  EXPECT_EQ(increasing.check(*forge.block(0, 7, {b0->ref()}), dag),
            ValidityError::kOk);
  // But still strictly increasing: same k is not a valid parent link.
  const BlockPtr b7 = forge.block(0, 7, {b0->ref()});
  dag.insert(b7);
  EXPECT_EQ(increasing.check(*forge.block(0, 7, {b7->ref()}), dag),
            ValidityError::kBadParentSeqNo);
}

TEST_F(ValidityTest, DuplicatePredsCountOnce) {
  // §4: byzantine servers may reference a block multiple times; the
  // duplicate collapses rather than invalidating the block.
  const BlockPtr b0 = forge.block(0, 0, {});
  dag.insert(b0);
  EXPECT_EQ(validator.check(*forge.block(0, 1, {b0->ref(), b0->ref()}), dag),
            ValidityError::kOk);
}

TEST_F(ValidityTest, CrossServerPredsAreFine) {
  const BlockPtr mine = forge.block(0, 0, {});
  const BlockPtr theirs = forge.block(1, 0, {});
  dag.insert(mine);
  dag.insert(theirs);
  EXPECT_EQ(validator.check(*forge.block(0, 1, {mine->ref(), theirs->ref()}), dag),
            ValidityError::kOk);
}

TEST_F(ValidityTest, ErrorNamesAreStable) {
  EXPECT_STREQ(validity_error_name(ValidityError::kOk), "ok");
  EXPECT_STREQ(validity_error_name(ValidityError::kBadSignature), "bad_signature");
  EXPECT_STREQ(validity_error_name(ValidityError::kMissingPred), "missing_pred");
}

}  // namespace
}  // namespace blockdag
