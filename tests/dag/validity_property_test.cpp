// Validity fuzzing: mutations of honestly built blocks must be rejected
// (or provably re-signed), and validation must never crash on arbitrary
// structure. Sweeps over seeds (TEST_P).
#include <gtest/gtest.h>

#include "crypto/wots.h"
#include "dag/validity.h"
#include "testing/builders.h"
#include "testing/random_dag.h"
#include "util/rng.h"

namespace blockdag {
namespace {

using testing::BlockForge;

class ValidityFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidityFuzz, HonestDagFullyValid) {
  BlockForge forge(8);
  testing::RandomDagConfig cfg;
  cfg.n_servers = 4 + GetParam() % 4;
  cfg.rounds = 5 + GetParam() % 4;
  const auto rd = make_random_dag(forge, cfg, GetParam());

  Validator validator(forge.sigs());
  // Re-validate every block bottom-up into a fresh DAG.
  BlockDag rebuilt;
  for (const BlockPtr& b : rd.dag.topological_order()) {
    ASSERT_EQ(validator.check(*b, rebuilt), ValidityError::kOk)
        << "block " << b->ref().short_hex();
    ASSERT_TRUE(rebuilt.insert(b));
  }
}

TEST_P(ValidityFuzz, TamperedBlocksRejected) {
  BlockForge forge(8);
  Rng rng(GetParam());
  BlockDag dag;
  const BlockPtr b0 = forge.block(0, 0, {});
  const BlockPtr other = forge.block(1, 0, {});
  dag.insert(b0);
  dag.insert(other);
  const BlockPtr good = forge.block(0, 1, {b0->ref(), other->ref()},
                                    {{1, Bytes{1, 2, 3}}});
  Validator validator(forge.sigs());
  ASSERT_EQ(validator.check(*good, dag), ValidityError::kOk);

  // Mutations keeping the original signature must all fail — the σ binds
  // ref(B), which covers every field (Definition 3.1).
  const auto tampered_fails = [&](ServerId n, SeqNo k, std::vector<Hash256> preds,
                                  std::vector<LabeledRequest> rs) {
    Block mutant(n, k, std::move(preds), std::move(rs), good->sigma());
    EXPECT_NE(validator.check(mutant, dag), ValidityError::kOk);
  };
  tampered_fails(1, 1, good->preds(), good->rs());                 // builder
  tampered_fails(0, 2, good->preds(), good->rs());                 // seq no
  tampered_fails(0, 1, {b0->ref()}, good->rs());                   // preds
  tampered_fails(0, 1, good->preds(), {{1, Bytes{9, 9, 9}}});      // payload
  tampered_fails(0, 1, good->preds(), {});                         // drop rs

  // Random signature bytes fail with overwhelming probability.
  for (int i = 0; i < 20; ++i) {
    Bytes junk(32);
    for (auto& x : junk) x = static_cast<std::uint8_t>(rng.next());
    Block mutant(0, 1, good->preds(), good->rs(), junk);
    EXPECT_EQ(validator.check(mutant, dag), ValidityError::kBadSignature);
  }
}

TEST_P(ValidityFuzz, RandomStructureNeverCrashesValidation) {
  BlockForge forge(8);
  Rng rng(GetParam() ^ 0xabcdef);
  BlockDag dag;
  std::vector<Hash256> known;
  Validator validator(forge.sigs());

  for (int i = 0; i < 60; ++i) {
    const auto n = static_cast<ServerId>(rng.below(8));
    const auto k = static_cast<SeqNo>(rng.below(5));
    std::vector<Hash256> preds;
    const std::size_t n_preds = rng.below(4);
    for (std::size_t p = 0; p < n_preds; ++p) {
      if (!known.empty() && rng.chance(0.8)) {
        preds.push_back(known[rng.below(known.size())]);
      } else {
        preds.push_back(Hash256::of(Bytes{static_cast<std::uint8_t>(rng.next())}));
      }
    }
    const BlockPtr b = forge.block(n, k, std::move(preds));
    const ValidityError err = validator.check(*b, dag);
    if (err == ValidityError::kOk) {
      ASSERT_TRUE(dag.insert(b));
      known.push_back(b->ref());
    }
    // Whatever err was, nothing crashed and the DAG invariant holds:
    // every inserted block validated against only-valid predecessors.
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidityFuzz, ::testing::Range<std::uint64_t>(1, 16));

class WotsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WotsSweep, RandomMessagesRoundTripAndCrossFail) {
  Rng rng(GetParam());
  Bytes seed(32);
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next());
  WotsKeychain chain(seed);

  const auto random_msg = [&] {
    Bytes m(1 + rng.below(100));
    for (auto& b : m) b = static_cast<std::uint8_t>(rng.next());
    return m;
  };
  const Bytes m1 = random_msg();
  const Bytes m2 = random_msg();
  const std::uint64_t idx = rng.below(64);

  const WotsPublicKey pk = chain.public_key(idx);
  const Bytes sig = chain.sign(idx, m1);
  EXPECT_TRUE(wots_verify(pk, m1, sig));
  if (m1 != m2) {
    EXPECT_FALSE(wots_verify(pk, m2, sig));
  }
  EXPECT_FALSE(wots_verify(chain.public_key(idx + 1), m1, sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WotsSweep, ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace blockdag
