#include "dag/block.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;

TEST(Block, RefIndependentOfSignature) {
  // Definition 3.1: ref is computed from (n, k, preds, rs) but not σ, so
  // sign(B.n, ref(B)) is well defined.
  BlockForge forge(4);
  const BlockPtr signed_block = forge.block(0, 0, {}, {LabeledRequest{1, {5}}});
  Block unsigned_block(0, 0, {}, {LabeledRequest{1, {5}}}, Bytes{});
  EXPECT_EQ(signed_block->ref(), unsigned_block.ref());
}

TEST(Block, RefSensitiveToEveryField) {
  BlockForge forge(4);
  const BlockPtr base = forge.block(0, 1, {Hash256::of(Bytes{1})}, {{7, {1}}});
  EXPECT_NE(base->ref(), forge.block(1, 1, {Hash256::of(Bytes{1})}, {{7, {1}}})->ref());
  EXPECT_NE(base->ref(), forge.block(0, 2, {Hash256::of(Bytes{1})}, {{7, {1}}})->ref());
  EXPECT_NE(base->ref(), forge.block(0, 1, {Hash256::of(Bytes{2})}, {{7, {1}}})->ref());
  EXPECT_NE(base->ref(), forge.block(0, 1, {Hash256::of(Bytes{1})}, {{8, {1}}})->ref());
  EXPECT_NE(base->ref(), forge.block(0, 1, {Hash256::of(Bytes{1})}, {{7, {2}}})->ref());
}

TEST(Block, PredsOrderMatters) {
  // preds is a *list*; reordering changes the ref.
  BlockForge forge(4);
  const Hash256 a = Hash256::of(Bytes{1});
  const Hash256 b = Hash256::of(Bytes{2});
  EXPECT_NE(forge.block(0, 0, {a, b})->ref(), forge.block(0, 0, {b, a})->ref());
}

TEST(Block, EncodeDecodeRoundTrip) {
  BlockForge forge(4);
  const BlockPtr block =
      forge.block(2, 5, {Hash256::of(Bytes{1}), Hash256::of(Bytes{2})},
                  {{1, {10, 20}}, {9, {}}});
  const auto decoded = Block::decode(block->encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ref(), block->ref());
  EXPECT_EQ(decoded->n(), 2u);
  EXPECT_EQ(decoded->k(), 5u);
  EXPECT_EQ(decoded->preds(), block->preds());
  EXPECT_EQ(decoded->rs(), block->rs());
  EXPECT_EQ(decoded->sigma(), block->sigma());
}

TEST(Block, DecodeRejectsMalformed) {
  EXPECT_FALSE(Block::decode(Bytes{}).has_value());
  EXPECT_FALSE(Block::decode(Bytes{1, 2, 3}).has_value());

  BlockForge forge(4);
  Bytes wire = forge.block(0, 0, {})->encode();
  wire.pop_back();
  EXPECT_FALSE(Block::decode(wire).has_value());  // truncated
  wire = forge.block(0, 0, {})->encode();
  wire.push_back(0);
  EXPECT_FALSE(Block::decode(wire).has_value());  // trailing bytes
}

TEST(Block, GenesisDetection) {
  BlockForge forge(4);
  EXPECT_TRUE(forge.block(0, 0, {})->is_genesis());
  EXPECT_FALSE(forge.block(0, 1, {})->is_genesis());
}

TEST(Block, Lemma32NoCyclicReferences) {
  // Lemma 3.2: if B1 ∈ B2.preds then B2 ∉ B1.preds. Structurally: B2's ref
  // depends on B1's ref, so equality of B1.preds with ref(B2) would need a
  // hash preimage. We verify the refs genuinely differ and the dependency
  // is one-way.
  BlockForge forge(4);
  const BlockPtr b1 = forge.block(0, 0, {});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref()});
  EXPECT_NE(b1->ref(), b2->ref());
  for (const Hash256& p : b1->preds()) EXPECT_NE(p, b2->ref());
}

TEST(Block, RequestsPreserveOrderAndDuplicates) {
  BlockForge forge(4);
  const std::vector<LabeledRequest> rs = {{1, {1}}, {1, {1}}, {2, {1}}};
  const BlockPtr block = forge.block(0, 0, {}, rs);
  EXPECT_EQ(block->rs(), rs);
}

}  // namespace
}  // namespace blockdag
