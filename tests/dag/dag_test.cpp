#include "dag/dag.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;
using testing::Figure2;

TEST(BlockDag, InsertRequiresPreds) {
  // Definition 3.4 precondition: all preds must already be present.
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b1 = forge.block(0, 0, {});
  const BlockPtr b2 = forge.block(0, 1, {b1->ref()});
  EXPECT_FALSE(dag.insert(b2));  // b1 missing
  EXPECT_EQ(dag.size(), 0u);
  EXPECT_TRUE(dag.insert(b1));
  EXPECT_TRUE(dag.insert(b2));
  EXPECT_EQ(dag.size(), 2u);
  EXPECT_EQ(dag.edge_count(), 1u);
}

TEST(BlockDag, RejectedInsertLeavesDagUnchanged) {
  // A rejected insert must not leave any partial state behind: not the
  // vertex, not edges to the preds that *are* present, not the topo order.
  BlockForge forge(4);
  Figure2 fig(forge);
  BlockDag dag = fig.dag();
  const std::vector<BlockPtr> order_before = dag.topological_order();

  // b4 depends on b3 (present) and on a block the DAG has never seen.
  const BlockPtr missing = forge.block(2, 0, {});
  const BlockPtr b4 = forge.block(1, 1, {fig.b3->ref(), missing->ref()});
  EXPECT_FALSE(dag.insert(b4));
  EXPECT_EQ(dag.size(), 3u);
  EXPECT_EQ(dag.edge_count(), 2u);
  EXPECT_FALSE(dag.contains(b4->ref()));
  EXPECT_TRUE(dag.children(fig.b3->ref()).empty());
  EXPECT_EQ(dag.topological_order(), order_before);

  // Once the missing pred arrives the same block inserts cleanly.
  EXPECT_TRUE(dag.insert(missing));
  EXPECT_TRUE(dag.insert(b4));
  EXPECT_EQ(dag.size(), 5u);
  EXPECT_EQ(dag.edge_count(), 4u);
}

TEST(BlockDag, InsertIsIdempotent) {
  // Lemma 2.2(1).
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b = forge.block(0, 0, {});
  EXPECT_TRUE(dag.insert(b));
  EXPECT_TRUE(dag.insert(b));
  EXPECT_EQ(dag.size(), 1u);
  EXPECT_EQ(dag.edge_count(), 0u);
}

TEST(BlockDag, DuplicateInsertDoesNotDuplicateStructure) {
  // Lemma 2.2(1) again, for a block with edges: re-inserting must not grow
  // the topo order, the children lists, or the edge count.
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b1 = forge.block(0, 0, {});
  const BlockPtr b2 = forge.block(0, 1, {b1->ref()});
  EXPECT_TRUE(dag.insert(b1));
  EXPECT_TRUE(dag.insert(b2));
  EXPECT_TRUE(dag.insert(b2));
  EXPECT_EQ(dag.size(), 2u);
  EXPECT_EQ(dag.edge_count(), 1u);
  EXPECT_EQ(dag.topological_order().size(), 2u);
  EXPECT_EQ(dag.children(b1->ref()), std::vector<Hash256>{b2->ref()});
}

TEST(BlockDag, DuplicatePredsCollapseToOneEdge) {
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b1 = forge.block(0, 0, {});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref(), b1->ref()});
  dag.insert(b1);
  dag.insert(b2);
  EXPECT_EQ(dag.edge_count(), 1u);
  EXPECT_EQ(dag.children(b1->ref()).size(), 1u);
}

TEST(BlockDag, DuplicatePredsMixedWithDistinctOnes) {
  // A byzantine builder repeating one ref many times alongside a distinct
  // one gets exactly one edge per distinct pred (Algorithm 2 line 9 union
  // semantics), and reachability is unaffected.
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b1 = forge.block(0, 0, {});
  const BlockPtr b2 = forge.block(1, 0, {});
  const BlockPtr b3 = forge.block(
      2, 0, {b1->ref(), b1->ref(), b2->ref(), b1->ref(), b2->ref()});
  dag.insert(b1);
  dag.insert(b2);
  EXPECT_TRUE(dag.insert(b3));
  EXPECT_EQ(dag.edge_count(), 2u);
  EXPECT_EQ(dag.children(b1->ref()), std::vector<Hash256>{b3->ref()});
  EXPECT_EQ(dag.children(b2->ref()), std::vector<Hash256>{b3->ref()});
  EXPECT_TRUE(dag.reachable(b1->ref(), b3->ref()));
  EXPECT_TRUE(dag.reachable(b2->ref(), b3->ref()));
}

TEST(BlockDag, Figure2Structure) {
  BlockForge forge(4);
  Figure2 fig(forge);
  BlockDag dag = fig.dag();
  EXPECT_EQ(dag.size(), 3u);
  EXPECT_EQ(dag.edge_count(), 2u);
  // parent(B3) = B1 (Example 3.5).
  EXPECT_EQ(dag.parent_of(*fig.b3), fig.b1);
  EXPECT_EQ(dag.parent_of(*fig.b1), nullptr);  // genesis
  // children of B1 and B2 are both {B3}.
  EXPECT_EQ(dag.children(fig.b1->ref()), std::vector<Hash256>{fig.b3->ref()});
  EXPECT_EQ(dag.children(fig.b2->ref()), std::vector<Hash256>{fig.b3->ref()});
}

TEST(BlockDag, ReachabilityIsStrictTransitive) {
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr b1 = forge.block(0, 0, {});
  const BlockPtr b2 = forge.block(0, 1, {b1->ref()});
  const BlockPtr b3 = forge.block(0, 2, {b2->ref()});
  dag.insert(b1);
  dag.insert(b2);
  dag.insert(b3);
  EXPECT_TRUE(dag.reachable(b1->ref(), b2->ref()));
  EXPECT_TRUE(dag.reachable(b1->ref(), b3->ref()));  // transitive
  EXPECT_FALSE(dag.reachable(b3->ref(), b1->ref())); // no cycles
  EXPECT_FALSE(dag.reachable(b1->ref(), b1->ref())); // strict (⇀+)
}

TEST(BlockDag, AncestorsIncludeSelf) {
  BlockForge forge(4);
  Figure2 fig(forge);
  BlockDag dag = fig.dag();
  const auto anc = dag.ancestors_of(fig.b3->ref());
  EXPECT_EQ(anc.size(), 3u);
  EXPECT_EQ(anc.front(), fig.b3);  // BFS starts at the block itself
}

TEST(BlockDag, TopologicalOrderRespectsEdges) {
  BlockForge forge(4);
  Figure2 fig(forge);
  BlockDag dag = fig.dag();
  const auto& order = dag.topological_order();
  std::size_t i1 = 99, i3 = 99;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == fig.b1) i1 = i;
    if (order[i] == fig.b3) i3 = i;
  }
  EXPECT_LT(i1, i3);
}

TEST(BlockDag, SubgraphRelation) {
  // G ⩽ G' (Section 2): for insert-built DAGs this is vertex containment.
  BlockForge forge(4);
  Figure2 fig(forge);
  BlockDag small;
  small.insert(fig.b1);
  BlockDag big = fig.dag();
  EXPECT_TRUE(small.subgraph_of(big));
  EXPECT_FALSE(big.subgraph_of(small));
  EXPECT_TRUE(big.subgraph_of(big));
  EXPECT_TRUE(small.subgraph_of(small));
}

TEST(BlockDag, AbsorbMergesJointDag) {
  // Lemma A.7 flavour: the union of two correct servers' DAGs is a DAG.
  BlockForge forge(4);
  const BlockPtr a0 = forge.block(0, 0, {});
  const BlockPtr b0 = forge.block(1, 0, {});
  const BlockPtr a1 = forge.block(0, 1, {a0->ref(), b0->ref()});
  const BlockPtr b1 = forge.block(1, 1, {b0->ref(), a0->ref()});

  BlockDag g1;  // server 0's view
  g1.insert(a0);
  g1.insert(b0);
  g1.insert(a1);
  BlockDag g2;  // server 1's view
  g2.insert(b0);
  g2.insert(a0);
  g2.insert(b1);

  g1.absorb(g2);
  EXPECT_EQ(g1.size(), 4u);
  EXPECT_TRUE(g2.subgraph_of(g1));
}

TEST(BlockDag, GetUnknownReturnsNull) {
  BlockDag dag;
  EXPECT_EQ(dag.get(Hash256::of(Bytes{1})), nullptr);
  EXPECT_TRUE(dag.children(Hash256::of(Bytes{1})).empty());
}

TEST(BlockDag, PruneBelowRemovesProperAncestors) {
  BlockForge forge(4);
  BlockDag dag;
  std::vector<BlockPtr> chain;
  chain.push_back(forge.block(0, 0, {}));
  dag.insert(chain.back());
  for (SeqNo k = 1; k < 10; ++k) {
    chain.push_back(forge.block(0, k, {chain.back()->ref()}));
    dag.insert(chain.back());
  }
  // Checkpoint at k=7: blocks 0..6 go, 7..9 stay.
  const std::size_t removed = dag.prune_below({chain[7]->ref()});
  EXPECT_EQ(removed, 7u);
  EXPECT_EQ(dag.size(), 3u);
  for (SeqNo k = 0; k < 7; ++k) EXPECT_FALSE(dag.contains(chain[k]->ref()));
  for (SeqNo k = 7; k < 10; ++k) EXPECT_TRUE(dag.contains(chain[k]->ref()));
  EXPECT_EQ(dag.edge_count(), 2u);
  // Pruning is idempotent.
  EXPECT_EQ(dag.prune_below({chain[7]->ref()}), 0u);
}

TEST(BlockDag, PruneKeepsUnrelatedBranches) {
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr a0 = forge.block(0, 0, {});
  const BlockPtr a1 = forge.block(0, 1, {a0->ref()});
  const BlockPtr b0 = forge.block(1, 0, {});  // unrelated genesis
  dag.insert(a0);
  dag.insert(a1);
  dag.insert(b0);
  EXPECT_EQ(dag.prune_below({a1->ref()}), 1u);
  EXPECT_TRUE(dag.contains(b0->ref()));
  EXPECT_TRUE(dag.contains(a1->ref()));
  EXPECT_FALSE(dag.contains(a0->ref()));
}

}  // namespace
}  // namespace blockdag
