// FlatMap must behave exactly like the std::map subset the interpreter hot
// path was ported from — in particular ascending-key iteration, which
// digest_of() depends on byte-for-byte.
#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "util/rng.h"

namespace blockdag {
namespace {

TEST(FlatMap, EmptyBehaviour) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), m.end());
  EXPECT_EQ(m.count(1), 0u);
  EXPECT_FALSE(m.contains(1));
  EXPECT_THROW(m.at(1), std::out_of_range);
}

TEST(FlatMap, SubscriptInsertsSortedAndFindsBack) {
  FlatMap<std::uint64_t, std::string> m;
  m[5] = "five";
  m[1] = "one";
  m[3] = "three";
  m[1] = "ONE";  // overwrite via existing slot
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at(1), "ONE");
  EXPECT_EQ(m.at(3), "three");
  EXPECT_EQ(m.at(5), "five");
  EXPECT_EQ(m.find(2), m.end());

  // Iteration is ascending by key.
  std::vector<std::uint64_t> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST(FlatMap, EmplaceDoesNotOverwrite) {
  FlatMap<std::uint64_t, int> m;
  auto [it1, fresh1] = m.emplace(7, 70);
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(it1->second, 70);
  auto [it2, fresh2] = m.emplace(7, 700);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(it2->second, 70);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, SupportsMoveOnlyValues) {
  FlatMap<std::uint64_t, std::unique_ptr<int>> m;
  m.emplace(2, std::make_unique<int>(22));
  m[1] = std::make_unique<int>(11);
  ASSERT_NE(m.at(1), nullptr);
  ASSERT_NE(m.at(2), nullptr);
  EXPECT_EQ(*m.at(1), 11);
  EXPECT_EQ(*m.at(2), 22);
  // Move the whole map; contents survive.
  FlatMap<std::uint64_t, std::unique_ptr<int>> moved = std::move(m);
  EXPECT_EQ(*moved.at(2), 22);
}

TEST(FlatMap, MatchesStdMapUnderRandomWorkload) {
  Rng rng(2024);
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t key = rng.below(64);
    switch (rng.below(3)) {
      case 0:
        flat[key] = step;
        ref[key] = static_cast<std::uint64_t>(step);
        break;
      case 1:
        flat.emplace(key, static_cast<std::uint64_t>(step));
        ref.emplace(key, static_cast<std::uint64_t>(step));
        break;
      default:
        EXPECT_EQ(flat.contains(key), ref.count(key) > 0);
        break;
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto fit = flat.begin();
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(fit->first, k);
    EXPECT_EQ(fit->second, v);
    ++fit;
  }
}

TEST(FlatMap, EqualityIsContentEquality) {
  FlatMap<int, int> a;
  FlatMap<int, int> b;
  a[1] = 10;
  a[2] = 20;
  b[2] = 20;
  b[1] = 10;  // different insertion order, same content
  EXPECT_TRUE(a == b);
  b[3] = 30;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace blockdag
