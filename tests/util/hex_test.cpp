#include "util/hex.h"

#include <gtest/gtest.h>

namespace blockdag {
namespace {

TEST(Hex, Encode) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_EQ(to_hex(Bytes{0x00, 0xff, 0x0a}), "00ff0a");
}

TEST(Hex, DecodeValid) {
  EXPECT_EQ(from_hex(""), Bytes{});
  EXPECT_EQ(from_hex("00ff0a"), (Bytes{0x00, 0xff, 0x0a}));
  EXPECT_EQ(from_hex("ABCD"), (Bytes{0xab, 0xcd}));  // upper-case accepted
}

TEST(Hex, DecodeInvalid) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Hex, RoundTrip) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

}  // namespace
}  // namespace blockdag
