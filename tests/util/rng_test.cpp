#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace blockdag {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.between(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIndependence) {
  Rng a(11);
  Rng child = a.fork();
  // Child stream should differ from parent continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == child.next();
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace blockdag
