#include "util/serialize.h"

#include <gtest/gtest.h>

namespace blockdag {
namespace {

TEST(Serialize, RoundTripIntegers) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, RoundTripBytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes(Bytes{});  // empty

  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_TRUE(r.done());
}

TEST(Serialize, LittleEndianLayout) {
  Writer w;
  w.u32(0x11223344);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x44);
  EXPECT_EQ(w.data()[3], 0x11);
}

TEST(Serialize, TruncationReturnsNullopt) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  EXPECT_TRUE(r.u16().has_value());
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.u64().has_value());
}

TEST(Serialize, TruncatedLengthPrefix) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow; none do
  Reader r(w.data());
  EXPECT_FALSE(r.bytes().has_value());
}

TEST(Serialize, RawWithoutPrefix) {
  Writer w;
  w.raw(Bytes{9, 8, 7});
  Reader r(w.data());
  EXPECT_EQ(r.raw(3), (Bytes{9, 8, 7}));
  EXPECT_FALSE(r.raw(1).has_value());
}

TEST(Serialize, CanonicalDeterminism) {
  const auto encode = [] {
    Writer w;
    w.u64(42);
    w.str("x");
    return std::move(w).take();
  };
  EXPECT_EQ(encode(), encode());
}

TEST(Serialize, RemainingTracksPosition) {
  Writer w;
  w.u64(1);
  w.u64(2);
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 16u);
  (void)r.u64();
  EXPECT_EQ(r.remaining(), 8u);
}

}  // namespace
}  // namespace blockdag
