#include "util/histogram.h"

#include <gtest/gtest.h>

namespace blockdag {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);
}

TEST(Histogram, UnsortedInputHandled) {
  Histogram h;
  for (double v : {9.0, 1.0, 5.0}) h.record(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
  h.record(0.5);  // recording after a sort invalidates the cache
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
}

TEST(Histogram, PercentileClamped) {
  Histogram h;
  h.record(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 7.0);
}

TEST(Histogram, SummaryFormat) {
  Histogram h;
  h.record(1.0);
  h.record(3.0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("mean=2.00"), std::string::npos);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(1.0);
  h.clear();
  EXPECT_TRUE(h.empty());
}

}  // namespace
}  // namespace blockdag
