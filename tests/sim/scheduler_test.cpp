#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace blockdag {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(sim_ms(30), [&] { order.push_back(3); });
  sched.at(sim_ms(10), [&] { order.push_back(1); });
  sched.at(sim_ms(20), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), sim_ms(30));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.at(sim_ms(5), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler sched;
  SimTime fired = 0;
  sched.at(sim_ms(10), [&] {
    sched.after(sim_ms(5), [&] { fired = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired, sim_ms(15));
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler sched;
  SimTime fired = 0;
  sched.at(sim_ms(10), [&] {
    sched.at(sim_ms(1), [&] { fired = sched.now(); });  // in the past
  });
  sched.run();
  EXPECT_EQ(fired, sim_ms(10));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.at(sim_ms(i * 10), [&] { ++count; });
  }
  sched.run_until(sim_ms(35));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sched.now(), sim_ms(35));
  sched.run_until(sim_ms(100));
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RunUntilAdvancesClockOnEmptyQueue) {
  Scheduler sched;
  sched.run_until(sim_sec(5));
  EXPECT_EQ(sched.now(), sim_sec(5));
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.step());
  sched.at(0, [] {});
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
}

TEST(Scheduler, RunRespectsMaxEvents) {
  Scheduler sched;
  int count = 0;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] {
    ++count;
    sched.after(1, loop);
  };
  sched.after(1, loop);
  EXPECT_EQ(sched.run(100), 100u);
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.events_executed(), 100u);
}

TEST(Scheduler, EventsCanScheduleAtSameTime) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(sim_ms(1), [&] {
    order.push_back(1);
    sched.at(sim_ms(1), [&] { order.push_back(2); });
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace blockdag
