#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace blockdag {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(sim_ms(30), [&] { order.push_back(3); });
  sched.at(sim_ms(10), [&] { order.push_back(1); });
  sched.at(sim_ms(20), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), sim_ms(30));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.at(sim_ms(5), [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, TiesBreakByInsertionOrderWhenInterleaved) {
  // The tie-break guarantee must hold by insertion sequence, not by heap
  // layout: events at the same SimTime fire in the order they were inserted
  // even when insertions of other times are interleaved between them.
  Scheduler sched;
  std::vector<int> order;
  sched.at(sim_ms(5), [&] { order.push_back(0); });
  sched.at(sim_ms(1), [&] { order.push_back(100); });
  sched.at(sim_ms(5), [&] { order.push_back(1); });
  sched.at(sim_ms(9), [&] { order.push_back(200); });
  sched.at(sim_ms(5), [&] { order.push_back(2); });
  sched.at(sim_ms(5), [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{100, 0, 1, 2, 3, 200}));
}

TEST(Scheduler, TiesFromRunningEventFireAfterExistingTies) {
  // An event scheduled at now() from within a running event is a later
  // insertion, so it fires after every already-queued event at that time.
  Scheduler sched;
  std::vector<int> order;
  sched.at(sim_ms(5), [&] {
    order.push_back(0);
    sched.at(sim_ms(5), [&] { order.push_back(9); });
  });
  sched.at(sim_ms(5), [&] { order.push_back(1); });
  sched.at(sim_ms(5), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler sched;
  SimTime fired = 0;
  sched.at(sim_ms(10), [&] {
    sched.after(sim_ms(5), [&] { fired = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired, sim_ms(15));
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler sched;
  SimTime fired = 0;
  sched.at(sim_ms(10), [&] {
    sched.at(sim_ms(1), [&] { fired = sched.now(); });  // in the past
  });
  sched.run();
  EXPECT_EQ(fired, sim_ms(10));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.at(sim_ms(i * 10), [&] { ++count; });
  }
  sched.run_until(sim_ms(35));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sched.now(), sim_ms(35));
  sched.run_until(sim_ms(100));
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RunUntilAdvancesClockOnEmptyQueue) {
  Scheduler sched;
  sched.run_until(sim_sec(5));
  EXPECT_EQ(sched.now(), sim_sec(5));
}

TEST(Scheduler, RunUntilEndsAtDeadlineWhenQueueDrainsEarly) {
  // The clock must land exactly on the deadline even if the last event fires
  // well before it — callers rely on now() to compute the next round's times.
  Scheduler sched;
  int count = 0;
  sched.at(sim_ms(3), [&] { ++count; });
  sched.at(sim_ms(7), [&] { ++count; });
  EXPECT_EQ(sched.run_until(sim_ms(50)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.now(), sim_ms(50));
}

TEST(Scheduler, RunUntilDeadlineIsInclusive) {
  // An event exactly at the deadline fires (time ≤ deadline).
  Scheduler sched;
  int count = 0;
  sched.at(sim_ms(10), [&] { ++count; });
  sched.run_until(sim_ms(10));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.now(), sim_ms(10));
}

TEST(Scheduler, RunUntilPastDeadlineDoesNotRewindClock) {
  Scheduler sched;
  sched.run_until(sim_ms(20));
  sched.run_until(sim_ms(10));  // already past: a no-op
  EXPECT_EQ(sched.now(), sim_ms(20));
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.step());
  sched.at(0, [] {});
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
}

TEST(Scheduler, RunRespectsMaxEvents) {
  Scheduler sched;
  int count = 0;
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] {
    ++count;
    sched.after(1, loop);
  };
  sched.after(1, loop);
  EXPECT_EQ(sched.run(100), 100u);
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.events_executed(), 100u);
}

TEST(Scheduler, EventsCanScheduleAtSameTime) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(sim_ms(1), [&] {
    order.push_back(1);
    sched.at(sim_ms(1), [&] { order.push_back(2); });
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- TimerService implementation (the net/ seam over the scheduler) ---

TEST(Scheduler, TimerServiceScheduleAfterFiresOnce) {
  Scheduler sched;
  TimerService& timers = sched;  // protocol code sees only the interface
  int fired = 0;
  const auto id = timers.schedule_after(sim_ms(5), [&] { ++fired; });
  EXPECT_NE(id, TimerService::kInvalidTimer);
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), sim_ms(5));
  // Fired timers can no longer be cancelled.
  EXPECT_FALSE(timers.cancel(id));
}

TEST(Scheduler, TimerServiceCancelPreventsTheAction) {
  Scheduler sched;
  TimerService& timers = sched;
  int fired = 0;
  const auto id = timers.schedule_after(sim_ms(5), [&] { ++fired; });
  EXPECT_TRUE(timers.cancel(id));
  EXPECT_FALSE(timers.cancel(id));  // second cancel is a no-op
  sched.run();  // the queued event degrades to a no-op but still drains
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.events_executed(), 1u);
}

TEST(Scheduler, TimerServiceIdsAreNeverReused) {
  Scheduler sched;
  TimerService& timers = sched;
  const auto a = timers.schedule_after(1, [] {});
  const auto b = timers.schedule_after(1, [] {});
  EXPECT_NE(a, b);
  sched.run();
  const auto c = timers.schedule_after(1, [] {});
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  sched.run();
}

}  // namespace
}  // namespace blockdag
