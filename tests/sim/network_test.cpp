#include "sim/network.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace blockdag {
namespace {

struct Rig {
  Scheduler sched;
  SimNetwork net;
  // per-server received (from, payload, time)
  struct Rx {
    ServerId from;
    Bytes payload;
    SimTime at;
  };
  std::map<ServerId, std::vector<Rx>> received;

  explicit Rig(std::uint32_t n, NetworkConfig cfg = {}) : net(sched, n, cfg) {
    for (ServerId s = 0; s < n; ++s) {
      net.attach(s, [this, s](ServerId from, const Bytes& payload) {
        received[s].push_back(Rx{from, payload, sched.now()});
      });
    }
  }
};

TEST(SimNetwork, DeliversWithLatency) {
  NetworkConfig cfg;
  cfg.latency = {LatencyModel::Kind::kFixed, sim_ms(7), 0};
  Rig rig(2, cfg);
  rig.net.send(0, 1, WireKind::kProtocol, Bytes{42});
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 1u);
  EXPECT_EQ(rig.received[1][0].from, 0u);
  EXPECT_EQ(rig.received[1][0].payload, Bytes{42});
  EXPECT_EQ(rig.received[1][0].at, sim_ms(7));
}

TEST(SimNetwork, SelfDeliveryIsImmediateAndFree) {
  Rig rig(2);
  rig.net.send(0, 0, WireKind::kBlock, Bytes{1});
  rig.sched.run();
  ASSERT_EQ(rig.received[0].size(), 1u);
  EXPECT_EQ(rig.received[0][0].at, 0u);
  EXPECT_EQ(rig.net.metrics().total_messages(), 0u);  // no wire traffic
}

TEST(SimNetwork, BroadcastReachesEveryone) {
  Rig rig(5);
  rig.net.broadcast(2, WireKind::kBlock, Bytes{9});
  rig.sched.run();
  for (ServerId s = 0; s < 5; ++s) {
    ASSERT_EQ(rig.received[s].size(), 1u) << "server " << s;
  }
  // 4 wire messages (self-delivery is local).
  EXPECT_EQ(rig.net.metrics().messages[static_cast<int>(WireKind::kBlock)], 4u);
}

TEST(SimNetwork, MetricsCountBytesPerKind) {
  Rig rig(2);
  rig.net.send(0, 1, WireKind::kBlock, Bytes(100));
  rig.net.send(0, 1, WireKind::kFwdRequest, Bytes(10));
  rig.sched.run();
  const auto& m = rig.net.metrics();
  EXPECT_EQ(m.bytes[static_cast<int>(WireKind::kBlock)], 100u);
  EXPECT_EQ(m.bytes[static_cast<int>(WireKind::kFwdRequest)], 10u);
  EXPECT_EQ(m.total_bytes(), 110u);
  EXPECT_EQ(m.total_messages(), 2u);
}

TEST(SimNetwork, DropsAreTransientWithCap) {
  NetworkConfig cfg;
  cfg.drop_probability = 1.0;  // drop everything...
  cfg.max_drops_per_pair = 3;  // ...but only the first 3 per ordered pair
  Rig rig(2, cfg);
  for (int i = 0; i < 5; ++i) rig.net.send(0, 1, WireKind::kBlock, Bytes{1});
  rig.sched.run();
  EXPECT_EQ(rig.received[1].size(), 2u);
  EXPECT_EQ(rig.net.metrics().dropped, 3u);
}

TEST(SimNetwork, UniformLatencyWithinBounds) {
  NetworkConfig cfg;
  cfg.latency = {LatencyModel::Kind::kUniform, sim_ms(5), sim_ms(10)};
  Rig rig(2, cfg);
  for (int i = 0; i < 100; ++i) rig.net.send(0, 1, WireKind::kBlock, Bytes{1});
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 100u);
  for (const auto& rx : rig.received[1]) {
    EXPECT_GE(rx.at, sim_ms(5));
    EXPECT_LE(rx.at, sim_ms(15));
  }
}

TEST(SimNetwork, HeavyTailLatencyAtLeastBase) {
  NetworkConfig cfg;
  cfg.latency = {LatencyModel::Kind::kHeavyTail, sim_ms(2), sim_ms(4)};
  Rig rig(2, cfg);
  for (int i = 0; i < 200; ++i) rig.net.send(0, 1, WireKind::kBlock, Bytes{1});
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 200u);
  for (const auto& rx : rig.received[1]) EXPECT_GE(rx.at, sim_ms(2));
}

TEST(SimNetwork, PartitionHoldsTrafficUntilHeal) {
  NetworkConfig cfg;
  cfg.latency = {LatencyModel::Kind::kFixed, sim_ms(1), 0};
  Rig rig(4, cfg);
  rig.net.partition({0, 1}, {2, 3}, /*heal_at=*/sim_ms(100));

  rig.net.send(0, 2, WireKind::kBlock, Bytes{1});  // cross-cut: held
  rig.net.send(0, 1, WireKind::kBlock, Bytes{2});  // same side: normal

  rig.sched.run_until(sim_ms(50));
  EXPECT_TRUE(rig.received[2].empty());
  ASSERT_EQ(rig.received[1].size(), 1u);

  rig.sched.run_until(sim_ms(200));
  ASSERT_EQ(rig.received[2].size(), 1u);
  EXPECT_GE(rig.received[2][0].at, sim_ms(100));  // delayed, not destroyed
}

TEST(SimNetwork, PartitionExpiresForNewTraffic) {
  NetworkConfig cfg;
  cfg.latency = {LatencyModel::Kind::kFixed, sim_ms(1), 0};
  Rig rig(2, cfg);
  rig.net.partition({0}, {1}, sim_ms(10));
  rig.sched.run_until(sim_ms(20));
  rig.net.send(0, 1, WireKind::kBlock, Bytes{1});
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 1u);
  EXPECT_EQ(rig.received[1][0].at, sim_ms(21));
}

TEST(SimNetwork, GstSwitchesLatencyModels) {
  // Partial synchrony (§7): before GST the chaotic model applies; from
  // GST on, newly sent messages obey the bounded model.
  NetworkConfig cfg;
  cfg.gst = sim_ms(100);
  cfg.pre_gst_latency = {LatencyModel::Kind::kFixed, sim_ms(500), 0};
  cfg.latency = {LatencyModel::Kind::kFixed, sim_ms(2), 0};
  Rig rig(2, cfg);

  rig.net.send(0, 1, WireKind::kBlock, Bytes{1});  // sent at t=0: chaotic
  rig.sched.run_until(sim_ms(150));                // now past GST
  rig.net.send(0, 1, WireKind::kBlock, Bytes{2});  // sent post-GST: bounded
  rig.sched.run();

  ASSERT_EQ(rig.received[1].size(), 2u);
  // Post-GST message overtakes the pre-GST one.
  EXPECT_EQ(rig.received[1][0].payload, Bytes{2});
  EXPECT_EQ(rig.received[1][0].at, sim_ms(152));
  EXPECT_EQ(rig.received[1][1].payload, Bytes{1});
  EXPECT_EQ(rig.received[1][1].at, sim_ms(500));
}

TEST(SimNetwork, DeterministicGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.latency = {LatencyModel::Kind::kUniform, sim_ms(1), sim_ms(20)};
    cfg.seed = seed;
    Rig rig(2, cfg);
    for (int i = 0; i < 50; ++i) rig.net.send(0, 1, WireKind::kBlock, Bytes{1});
    rig.sched.run();
    std::vector<SimTime> times;
    for (const auto& rx : rig.received[1]) times.push_back(rx.at);
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimNetwork, LatencyRegimeSwitchAppliesToSubsequentSends) {
  NetworkConfig cfg;
  cfg.latency = {LatencyModel::Kind::kFixed, sim_ms(7), 0};
  Rig rig(2, cfg);
  rig.net.send(0, 1, WireKind::kProtocol, Bytes{1});
  // Mid-run regime switch (scenario engine): the in-flight message keeps
  // its sampled delay; the next send uses the new model.
  rig.net.set_latency_model({LatencyModel::Kind::kFixed, sim_ms(2), 0});
  rig.net.send(0, 1, WireKind::kProtocol, Bytes{2});
  rig.sched.run();
  ASSERT_EQ(rig.received[1].size(), 2u);
  // The second send overtakes the first (2ms vs 7ms) — scheduler order.
  EXPECT_EQ(rig.received[1][0].payload, Bytes{2});
  EXPECT_EQ(rig.received[1][0].at, sim_ms(2));
  EXPECT_EQ(rig.received[1][1].payload, Bytes{1});
  EXPECT_EQ(rig.received[1][1].at, sim_ms(7));
}

TEST(SimNetwork, DropRegimeBudgetOnlyGrows) {
  NetworkConfig cfg;
  cfg.drop_probability = 1.0;
  cfg.max_drops_per_pair = 2;
  Rig rig(2, cfg);
  for (int i = 0; i < 4; ++i) rig.net.send(0, 1, WireKind::kProtocol, Bytes{1});
  rig.sched.run();
  // Budget 2: two drops, then sends succeed (transient loss, Assumption 1).
  EXPECT_EQ(rig.net.metrics().dropped, 2u);
  EXPECT_EQ(rig.received[1].size(), 2u);
  // A regime switch can raise the budget but never shrink it below what an
  // earlier regime granted.
  rig.net.set_drop_regime(1.0, 3);
  rig.net.send(0, 1, WireKind::kProtocol, Bytes{2});  // third drop
  rig.net.send(0, 1, WireKind::kProtocol, Bytes{3});  // budget exhausted again
  rig.net.set_drop_regime(1.0, 1);  // attempt to shrink: kept at 3
  rig.net.send(0, 1, WireKind::kProtocol, Bytes{4});
  rig.sched.run();
  EXPECT_EQ(rig.net.metrics().dropped, 3u);
  EXPECT_EQ(rig.received[1].size(), 4u);
  // And switching the probability off stops dropping regardless of budget.
  rig.net.set_drop_regime(0.0, 100);
  rig.net.send(0, 1, WireKind::kProtocol, Bytes{5});
  rig.sched.run();
  EXPECT_EQ(rig.net.metrics().dropped, 3u);
  EXPECT_EQ(rig.received[1].size(), 5u);
}

}  // namespace
}  // namespace blockdag
