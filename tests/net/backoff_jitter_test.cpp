// jittered_delay: the de-correlation primitive behind both socket
// backends' retry schedules (TCP reconnects, UDP retransmission RTOs).
//
// The contract under test: delays spread uniformly over ±jitter_pct of the
// base — genuinely using both halves of the band, never escaping it — from
// a deterministic seeded stream (same seed ⇒ same schedule, the
// reproducibility rule every transport decision obeys), and the disabled
// configuration is bit-identical to pre-jitter behaviour including not
// consuming the stream.
#include "net/backoff.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "net/datagram.h"
#include "rt/tcp_transport.h"

namespace blockdag {
namespace {

TEST(BackoffJitter, SpreadsAcrossTheFullBandAndStaysInside) {
  const std::uint64_t base = 25'000'000;  // 25ms in ns
  const double pct = 0.25;
  std::uint64_t state = 0x12345678u;

  const std::uint64_t lo = 18'750'000;  // base * 0.75
  const std::uint64_t hi = 31'250'000;  // base * 1.25
  std::uint64_t min_seen = UINT64_MAX;
  std::uint64_t max_seen = 0;
  double sum = 0;
  const int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t d = jittered_delay(base, pct, state);
    ASSERT_GE(d, lo) << "draw " << i << " escaped the band low";
    ASSERT_LE(d, hi) << "draw " << i << " escaped the band high";
    min_seen = std::min(min_seen, d);
    max_seen = std::max(max_seen, d);
    sum += static_cast<double>(d);
  }
  // The point of jitter is spread: draws must actually reach both edges of
  // the band, not cluster at the base (which would leave retries in
  // lockstep). With 4096 uniform draws the extremes land within 1% of the
  // edges with overwhelming probability.
  EXPECT_LT(min_seen, lo + base / 100) << "never approached the low edge";
  EXPECT_GT(max_seen, hi - base / 100) << "never approached the high edge";
  // Expected delay is unchanged: the mean stays within 2% of the base.
  const double mean = sum / kDraws;
  EXPECT_GT(mean, 0.98 * static_cast<double>(base));
  EXPECT_LT(mean, 1.02 * static_cast<double>(base));
}

TEST(BackoffJitter, SeededStreamIsDeterministic) {
  std::uint64_t a = 42, b = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(jittered_delay(1'000'000, 0.25, a),
              jittered_delay(1'000'000, 0.25, b));
  }
  EXPECT_EQ(a, b);
  // Different seeds produce different schedules (that is the
  // de-correlation: two channels must not retry in lockstep).
  std::uint64_t c = 43;
  int differing = 0;
  std::uint64_t a2 = 42;
  for (int i = 0; i < 100; ++i) {
    if (jittered_delay(1'000'000, 0.25, a2) !=
        jittered_delay(1'000'000, 0.25, c)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 90);
}

TEST(BackoffJitter, DisabledIsIdentityAndDoesNotConsumeTheStream) {
  for (const double pct : {0.0, -0.5, 1.0, 1.5}) {
    std::uint64_t state = 7;
    EXPECT_EQ(jittered_delay(123456, pct, state), 123456u) << "pct " << pct;
    EXPECT_EQ(state, 7u) << "pct " << pct << " advanced the stream";
  }
  std::uint64_t state = 7;
  EXPECT_EQ(jittered_delay(0, 0.25, state), 0u);
  EXPECT_EQ(state, 7u) << "base 0 advanced the stream";
}

// The two real-socket backends ship with ±25% jitter on by default — the
// crash/restart fault injector depends on survivors not re-dialing and
// re-transmitting in synchronized waves against a reborn member.
TEST(BackoffJitter, SocketBackendsDefaultToTwentyFivePercent) {
  EXPECT_DOUBLE_EQ(rt::TcpConfig{}.reconnect_jitter, 0.25);
  EXPECT_DOUBLE_EQ(DatagramChannelConfig{}.rto_jitter, 0.25);
}

}  // namespace
}  // namespace blockdag
