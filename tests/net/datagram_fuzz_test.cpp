// The datagram codec and receiver channel against adversarial datagrams:
// a deterministic sweep.
//
// On UDP any host that can reach the port controls every byte of every
// datagram, and unlike TCP there is no connection to vet the sender — the
// first armor layer is decode_datagram() plus the ReceiverChannel's
// windowing. The contract under attack: a malformed datagram is dropped
// whole, before any allocation or state commitment (truncations, bad
// version/kind bytes, a length field that lies about the byte count);
// a well-formed datagram with a hostile header (stale epoch, duplicate
// seq, far-future seq, forged ack) is counted and dropped without ever
// committing unbounded buffer space or corrupting the in-order stream.
// The sweep is deterministic so a regression reproduces without a seed.
#include "net/datagram.h"

#include <gtest/gtest.h>

#include "net/codec.h"
#include "net/frame.h"

namespace blockdag {
namespace {

Bytes payload_of(std::size_t n, std::uint8_t seed) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return p;
}

Bytes sample_datagram(std::uint64_t seq = 7, std::uint32_t epoch = 0) {
  DatagramHeader header;
  header.kind = DatagramKind::kData;
  header.from = 3;
  header.epoch = epoch;
  header.seq = seq;
  return encode_datagram(header, payload_of(40, 5));
}

DatagramChannelConfig small_config() {
  DatagramChannelConfig config;
  config.reorder_window = 8;
  return config;
}

// A valid single-chunk stream position: chunk `seq` of an in-progress
// frame stream, so the receiver has live state the attack could corrupt.
DatagramView must_decode(const Bytes& wire) {
  const auto view = decode_datagram(wire);
  EXPECT_TRUE(view.has_value());
  return *view;
}

TEST(DatagramFuzz, RoundTripPreservesEveryHeaderField) {
  DatagramHeader header;
  header.kind = DatagramKind::kData;
  header.from = 0xdeadbeef;
  header.epoch = 0x01020304;
  header.seq = 0x1122334455667788ULL;
  const Bytes payload = payload_of(100, 1);
  const Bytes wire = encode_datagram(header, payload);
  ASSERT_EQ(wire.size(), kDatagramHeaderSize + payload.size());
  const auto view = decode_datagram(wire);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->header.version, kDatagramVersion);
  EXPECT_EQ(view->header.kind, DatagramKind::kData);
  EXPECT_EQ(view->header.from, header.from);
  EXPECT_EQ(view->header.epoch, header.epoch);
  EXPECT_EQ(view->header.seq, header.seq);
  EXPECT_EQ(Bytes(view->payload.begin(), view->payload.end()), payload);

  DatagramHeader ack;
  ack.kind = DatagramKind::kAck;
  ack.from = 9;
  ack.epoch = 2;
  ack.ack = 0x8877665544332211ULL;
  const auto ack_view = decode_datagram(encode_datagram(ack, {}));
  ASSERT_TRUE(ack_view.has_value());
  EXPECT_EQ(ack_view->header.kind, DatagramKind::kAck);
  EXPECT_EQ(ack_view->header.ack, ack.ack);
  EXPECT_TRUE(ack_view->payload.empty());
}

TEST(DatagramFuzz, EveryTruncationBoundaryIsRejected) {
  // UDP preserves boundaries, so a short datagram is a short datagram —
  // never "wait for more bytes". Every proper prefix must be rejected.
  const Bytes wire = sample_datagram();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto view =
        decode_datagram(std::span<const std::uint8_t>(wire.data(), len));
    EXPECT_FALSE(view.has_value()) << "truncation to " << len;
  }
  EXPECT_TRUE(decode_datagram(wire).has_value());
}

TEST(DatagramFuzz, EveryVersionByteOtherThanCurrentIsRejected) {
  for (int v = 0; v < 256; ++v) {
    Bytes wire = sample_datagram();
    wire[0] = static_cast<std::uint8_t>(v);
    const auto view = decode_datagram(wire);
    EXPECT_EQ(view.has_value(), v == kDatagramVersion) << "version " << v;
  }
}

TEST(DatagramFuzz, EveryKindByteOutsideTheEnumIsRejected) {
  for (int k = 0; k < 256; ++k) {
    Bytes wire = sample_datagram();
    wire[1] = static_cast<std::uint8_t>(k);
    const auto view = decode_datagram(wire);
    // kData survives; kAck fails here because the datagram carries a
    // payload and acks must not — cross-kind forgery is caught by the
    // kind/payload consistency rule, not just the range check.
    EXPECT_EQ(view.has_value(), k == 0) << "kind " << k;
  }
}

TEST(DatagramFuzz, EveryForgedLengthIsRejected) {
  // The length field must match the actual byte count exactly; sweep all
  // 65536 values against a fixed 40-byte payload. Exactly one passes.
  const Bytes wire = sample_datagram();
  const std::size_t actual = wire.size() - kDatagramHeaderSize;
  for (std::uint32_t lie = 0; lie <= 0xffff; ++lie) {
    Bytes tampered = wire;
    tampered[26] = static_cast<std::uint8_t>(lie);
    tampered[27] = static_cast<std::uint8_t>(lie >> 8);
    const auto view = decode_datagram(tampered);
    EXPECT_EQ(view.has_value(), lie == actual) << "length lie " << lie;
  }
}

TEST(DatagramFuzz, ZeroLengthAndKindMismatchedPayloadsAreRejected) {
  // kData with no payload carries no stream bytes: dropped (a sequencing
  // no-op the sender never emits). kAck with a payload is a forgery.
  DatagramHeader data;
  data.kind = DatagramKind::kData;
  Bytes empty_data = encode_datagram(data, payload_of(1, 0));
  empty_data.resize(kDatagramHeaderSize);  // strip payload
  empty_data[26] = 0;
  empty_data[27] = 0;  // and tell the truth about it
  EXPECT_FALSE(decode_datagram(empty_data).has_value());

  DatagramHeader ack;
  ack.kind = DatagramKind::kAck;
  Bytes fat_ack = encode_datagram(ack, {});
  fat_ack.push_back(0x55);
  fat_ack[26] = 1;  // consistent length, inconsistent kind
  EXPECT_FALSE(decode_datagram(fat_ack).has_value());
}

TEST(DatagramFuzz, SingleByteFlipsNeverCrashAndNeverCorruptChannelState) {
  // Flip every byte of a valid mid-stream datagram and feed the result to
  // a live receiver. Whatever happens — accepted with altered content,
  // dropped as malformed, dropped by the window — the channel's next
  // expected seq and buffer occupancy must stay bounded and the delivered
  // in-order stream must never regress.
  ReceiverChannel receiver(small_config());
  std::vector<Frame> frames;
  const Bytes wire = sample_datagram(/*seq=*/1);
  for (std::size_t at = 0; at < wire.size(); ++at) {
    for (const std::uint8_t pattern : {0xffu, 0x01u}) {
      Bytes tampered = wire;
      tampered[at] ^= pattern;
      const auto view = decode_datagram(tampered);
      if (!view) continue;  // dropped pre-allocation: nothing to assert
      receiver.on_data(*view, frames);
      EXPECT_LE(receiver.buffered_chunks(), small_config().reorder_window);
      EXPECT_EQ(receiver.expected_seq(), 0u) << "flip at " << at;
    }
  }
  // The channel is still fully functional: a clean in-order stream from
  // seq 0 delivers (the flips above could bump the epoch, so speak the
  // receiver's current epoch — that is what the real sender does too).
  const Bytes frame =
      encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 3}, payload_of(20, 9));
  DatagramHeader header;
  header.kind = DatagramKind::kData;
  header.from = 3;
  header.epoch = receiver.epoch();
  header.seq = 0;
  receiver.on_data(must_decode(encode_datagram(header, frame)), frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload_of(20, 9));
}

TEST(DatagramFuzz, StaleSeqsAreCountedDroppedAndReacked) {
  ReceiverChannel receiver(small_config());
  std::vector<Frame> frames;
  const Bytes frame =
      encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 3}, payload_of(8, 2));
  DatagramHeader header;
  header.kind = DatagramKind::kData;
  header.from = 3;
  header.seq = 0;
  const Bytes wire = encode_datagram(header, frame);
  receiver.on_data(must_decode(wire), frames);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(receiver.take_ack(0).has_value());

  // Replay the delivered chunk ad nauseam: every copy is a counted
  // duplicate, re-arms the ack (the sender clearly missed ours), and the
  // stream position never moves.
  for (int i = 0; i < 10; ++i) {
    receiver.on_data(must_decode(wire), frames);
    EXPECT_EQ(frames.size(), 1u);
    EXPECT_EQ(receiver.expected_seq(), 1u);
    EXPECT_TRUE(receiver.take_ack(0).has_value()) << "replay " << i;
  }
  EXPECT_EQ(receiver.stats().duplicates, 10u);
}

TEST(DatagramFuzz, DuplicateBufferedSeqIsDroppedNotReplaced) {
  ReceiverChannel receiver(small_config());
  std::vector<Frame> frames;
  // Two different payloads claiming the same out-of-order seq: the second
  // must not replace the first (datagram content is attacker-controlled;
  // replacement would let a racing forgery rewrite buffered stream bytes).
  DatagramHeader header;
  header.kind = DatagramKind::kData;
  header.from = 3;
  header.seq = 2;
  receiver.on_data(must_decode(encode_datagram(header, payload_of(6, 1))), frames);
  receiver.on_data(must_decode(encode_datagram(header, payload_of(6, 99))), frames);
  EXPECT_EQ(receiver.buffered_chunks(), 1u);
  EXPECT_EQ(receiver.stats().duplicates, 1u);
  EXPECT_TRUE(frames.empty());
}

TEST(DatagramFuzz, FarFutureSeqsAreDroppedWithoutBufferingOrAck) {
  // A forged seq far beyond the reorder window must never commit buffer
  // space (memory-bound against a malicious flood) and must never be
  // acked (an ack would confirm stream progress that never happened).
  ReceiverChannel receiver(small_config());
  std::vector<Frame> frames;
  DatagramHeader header;
  header.kind = DatagramKind::kData;
  header.from = 3;
  const std::uint64_t forged[] = {small_config().reorder_window, 1000,
                                  0x7fffffffffffffffULL, 0xffffffffffffffffULL};
  for (const std::uint64_t seq : forged) {
    header.seq = seq;
    receiver.on_data(must_decode(encode_datagram(header, payload_of(10, 4))), frames);
    EXPECT_EQ(receiver.buffered_chunks(), 0u) << "seq " << seq;
    EXPECT_FALSE(receiver.take_ack(0).has_value()) << "seq " << seq;
  }
  EXPECT_EQ(receiver.stats().far_future_dropped, 4u);
  EXPECT_TRUE(frames.empty());
}

TEST(DatagramFuzz, StaleEpochIsNeverAckedOrBuffered) {
  ReceiverChannel receiver(small_config());
  std::vector<Frame> frames;
  // Adopt epoch 3 first (the sender reset twice while we were away).
  DatagramHeader header;
  header.kind = DatagramKind::kData;
  header.from = 3;
  header.epoch = 3;
  header.seq = 1;  // out of order within the new epoch: buffered
  receiver.on_data(must_decode(encode_datagram(header, payload_of(4, 7))), frames);
  EXPECT_EQ(receiver.epoch(), 3u);
  EXPECT_EQ(receiver.stats().resets, 1u);
  ASSERT_FALSE(receiver.take_ack(0).has_value());  // nothing delivered yet

  // Datagrams from dead epochs: counted, dropped, never acked — an ack
  // carrying the live epoch but provoked by a dead stream would desync
  // the sender's view of its own sequence space.
  for (std::uint32_t epoch = 0; epoch < 3; ++epoch) {
    header.epoch = epoch;
    header.seq = 0;
    receiver.on_data(must_decode(encode_datagram(header, payload_of(4, 8))), frames);
    EXPECT_EQ(receiver.epoch(), 3u) << "epoch " << epoch;
    EXPECT_FALSE(receiver.take_ack(0).has_value()) << "epoch " << epoch;
  }
  EXPECT_EQ(receiver.stats().duplicates, 3u);
  EXPECT_EQ(receiver.buffered_chunks(), 1u);  // the epoch-3 chunk, untouched
}

TEST(DatagramFuzz, ForgedAcksNeverRetireUndeliveredChunks) {
  // The sender side of the same hostility: acks are unauthenticated, so a
  // forged ack must at worst retire chunks the peer plausibly received —
  // never chunks of another epoch, and an absurd ack value must not
  // underflow or wedge the channel.
  SenderChannel sender(1, small_config());
  const Bytes frame =
      encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 1}, payload_of(64, 3));
  ASSERT_TRUE(sender.offer(frame));
  std::vector<Bytes> out;
  sender.poll(1, out);  // everything transmits at t=1
  const std::size_t chunks = sender.outstanding_chunks();
  ASSERT_GT(chunks, 0u);

  sender.on_ack(/*epoch=*/7, /*ack=*/chunks);  // wrong epoch: ignored
  EXPECT_EQ(sender.outstanding_chunks(), chunks);
  sender.on_ack(/*epoch=*/0, /*ack=*/0xffffffffffffffffULL);  // absurd value
  EXPECT_EQ(sender.outstanding_chunks(), 0u);  // retires at most what was sent
  EXPECT_EQ(sender.stats().acked_chunks, chunks);
  EXPECT_EQ(sender.epoch(), 0u);  // no reset, no underflow, channel live
  ASSERT_TRUE(sender.offer(frame));
  out.clear();
  EXPECT_GT(sender.poll(2, out), 0u);
}

// ---- kBatch over the datagram channel (DESIGN.md §13) ----
//
// On UDP a batch rides one frame, and a frame is the retransmission unit:
// it is chopped into MTU chunks, each chunk retransmitted independently.
// The contract: a batch reassembles byte-identically across the chunking,
// and a corrupt batch PAYLOAD (vs corrupt framing) costs only that batch —
// the epoch is not poisoned, later frames still flow.

Bytes sample_batch_frame(ServerId from) {
  // Three inner envelopes, total beyond one MTU so the frame really spans
  // multiple chunks.
  std::vector<Bytes> inners;
  inners.push_back(encode_tagged(WireKind::kBlock, payload_of(900, 1)));
  inners.push_back(encode_tagged(WireKind::kBlock, payload_of(900, 2)));
  inners.push_back(encode_tagged(WireKind::kFwdRequest, payload_of(32, 3)));
  std::vector<std::span<const std::uint8_t>> spans;
  for (const Bytes& inner : inners) spans.emplace_back(inner);
  return encode_frame(FrameHeader{kFrameVersion, WireKind::kBatch, from},
                      encode_batch(spans));
}

TEST(DatagramBatchFuzz, BatchFrameReassemblesAcrossMtuChunks) {
  SenderChannel sender(3, small_config());
  ReceiverChannel receiver(small_config());
  const Bytes frame = sample_batch_frame(3);
  ASSERT_TRUE(sender.offer(frame));
  std::vector<Bytes> datagrams;
  sender.poll(1, datagrams);
  ASSERT_GT(datagrams.size(), 1u) << "batch frame must span several chunks";

  std::vector<Frame> frames;
  for (const Bytes& d : datagrams) {
    receiver.on_data(must_decode(d), frames);
  }
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(static_cast<int>(frames[0].header.kind),
            static_cast<int>(WireKind::kBatch));
  const auto entries = split_batch(frames[0].payload);
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ(static_cast<int>((*entries)[0].kind),
            static_cast<int>(WireKind::kBlock));
  EXPECT_EQ(static_cast<int>((*entries)[2].kind),
            static_cast<int>(WireKind::kFwdRequest));
}

TEST(DatagramBatchFuzz, CorruptBatchPayloadCostsOnlyThatBatch) {
  // Flip one byte INSIDE the batch payload of a multi-chunk frame (the
  // first inner's length field). Framing stays valid, so the receiver
  // reassembles and delivers the frame; split_batch rejects it — a
  // payload-level loss. Crucially the epoch is NOT poisoned: the next
  // frame on the same channel must deliver.
  SenderChannel sender(3, small_config());
  ReceiverChannel receiver(small_config());
  Bytes frame = sample_batch_frame(3);
  frame[kFrameOverhead + 1] ^= 0xff;  // first batch length field
  ASSERT_TRUE(sender.offer(frame));
  const Bytes follow = encode_frame(
      FrameHeader{kFrameVersion, WireKind::kBlock, 3}, payload_of(20, 9));
  ASSERT_TRUE(sender.offer(follow));
  std::vector<Bytes> datagrams;
  sender.poll(1, datagrams);

  std::vector<Frame> frames;
  for (const Bytes& d : datagrams) {
    receiver.on_data(must_decode(d), frames);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_FALSE(split_batch(frames[0].payload).has_value());  // bad batch
  EXPECT_EQ(frames[1].payload, payload_of(20, 9));  // channel stayed live
  EXPECT_EQ(receiver.stats().corrupt_streams, 0u);  // payload-level, not framing
}

TEST(DatagramBatchFuzz, BatchPayloadFlipSweepNeverCrashesTheChannel) {
  // Single-byte flips across the whole batch payload, each through a fresh
  // chunked channel pair: every outcome is bounded — the frame reassembles
  // (framing bytes were untouched), split_batch either rejects or yields
  // in-bounds entries, and the channel survives to carry a follow-up.
  const Bytes frame = sample_batch_frame(3);
  // Stride 7 keeps the sweep fast while still hitting length fields, tags
  // and body bytes of every inner; the pure-codec byte-exact sweep lives in
  // frame_fuzz_test.cpp.
  for (std::size_t at = kFrameOverhead; at < frame.size(); at += 7) {
    Bytes tampered = frame;
    tampered[at] ^= 0xff;
    SenderChannel sender(3, small_config());
    ReceiverChannel receiver(small_config());
    ASSERT_TRUE(sender.offer(tampered));
    std::vector<Bytes> datagrams;
    sender.poll(1, datagrams);
    std::vector<Frame> frames;
    for (const Bytes& d : datagrams) {
      receiver.on_data(must_decode(d), frames);
    }
    ASSERT_EQ(frames.size(), 1u) << "flip at " << at;
    const auto entries = split_batch(frames[0].payload);
    if (entries) {
      EXPECT_LE(entries->size(), frames[0].payload.size() / 5)
          << "flip at " << at;
      for (const BatchEntry& e : *entries) {
        EXPECT_GE(e.envelope.data(), frames[0].payload.data());
        EXPECT_LE(e.envelope.data() + e.envelope.size(),
                  frames[0].payload.data() + frames[0].payload.size());
      }
    }
  }
}

TEST(DatagramFuzz, CorruptFrameStreamPoisonsOnlyTheCurrentEpoch) {
  // Correctly sequenced chunks carrying garbage (a byzantine sender, not a
  // byzantine network): the FrameDecoder poisons the epoch, buffered state
  // is released, later chunks of the epoch are inert — and a sender reset
  // (epoch bump) revives the channel.
  ReceiverChannel receiver(small_config());
  std::vector<Frame> frames;
  DatagramHeader header;
  header.kind = DatagramKind::kData;
  header.from = 3;
  header.seq = 0;
  const Bytes garbage{0x00, 0x00, 0x00, 0x00};  // frame len 0: fatal
  receiver.on_data(must_decode(encode_datagram(header, garbage)), frames);
  EXPECT_EQ(receiver.stats().corrupt_streams, 1u);
  EXPECT_EQ(receiver.buffered_chunks(), 0u);
  header.seq = 1;
  receiver.on_data(must_decode(encode_datagram(header, payload_of(4, 6))), frames);
  EXPECT_EQ(receiver.buffered_chunks(), 0u);  // poisoned epoch buffers nothing
  EXPECT_TRUE(frames.empty());

  header.epoch = 1;  // the sender reset; clean slate
  header.seq = 0;
  const Bytes good =
      encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 3}, payload_of(12, 11));
  receiver.on_data(must_decode(encode_datagram(header, good)), frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload_of(12, 11));
}

}  // namespace
}  // namespace blockdag
