// FrameDecoder against adversarial byte streams: a deterministic sweep.
//
// On a real socket any peer controls every byte, and TCP adds its own
// hazard: arbitrary read-boundary splits. The decoder is the first armor
// layer (the tagged-envelope decoder, covered by
// tests/gossip/wire_fuzz_test.cpp, is the second), so it must (a) be split
// oblivious — any partition of a valid stream into feed() calls yields the
// identical frame sequence — and (b) treat every malformed prefix as a
// connection-fatal, allocation-bounded error: a forged length field can
// never cause an unbounded allocation or a hang, it latches corrupt() so
// the transport resets the connection. The sweep is deterministic —
// every split boundary, every truncation, all 256 version and kind bytes,
// targeted length lies — so a regression reproduces without a seed.
#include "net/frame.h"

#include <gtest/gtest.h>

namespace blockdag {
namespace {

Bytes payload_of(std::size_t n, std::uint8_t seed) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return p;
}

// Three frames of different kinds/senders/sizes, concatenated — the shape
// of a busy TCP stream (empty payloads are legal at this layer).
Bytes sample_stream(std::vector<Frame>* expect = nullptr) {
  struct Spec {
    WireKind kind;
    ServerId from;
    std::size_t size;
  };
  const Spec specs[] = {{WireKind::kBlock, 2, 57},
                        {WireKind::kFwdRequest, 0, 32},
                        {WireKind::kControl, 7, 0}};
  Bytes stream;
  for (const Spec& spec : specs) {
    const Bytes payload = payload_of(spec.size, static_cast<std::uint8_t>(spec.size));
    const FrameHeader header{kFrameVersion, spec.kind, spec.from};
    const Bytes wire = encode_frame(header, payload);
    stream.insert(stream.end(), wire.begin(), wire.end());
    if (expect) expect->push_back(Frame{header, payload});
  }
  return stream;
}

void expect_frames_equal(const std::vector<Frame>& got,
                         const std::vector<Frame>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].header.version, want[i].header.version) << "frame " << i;
    EXPECT_EQ(static_cast<int>(got[i].header.kind),
              static_cast<int>(want[i].header.kind))
        << "frame " << i;
    EXPECT_EQ(got[i].header.from, want[i].header.from) << "frame " << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << "frame " << i;
  }
}

std::vector<Frame> drain(FrameDecoder& decoder) {
  std::vector<Frame> out;
  while (auto frame = decoder.next()) out.push_back(std::move(*frame));
  return out;
}

TEST(FrameFuzz, EverySingleSplitBoundaryDecodesIdentically) {
  // TCP may hand the stream over in any two (or more) pieces; the decoder
  // must not care. Sweep every byte position as the split point.
  std::vector<Frame> want;
  const Bytes stream = sample_stream(&want);
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    decoder.feed(std::span<const std::uint8_t>(stream.data(), split));
    std::vector<Frame> got = drain(decoder);
    decoder.feed(
        std::span<const std::uint8_t>(stream.data() + split, stream.size() - split));
    for (auto& frame : drain(decoder)) got.push_back(std::move(frame));
    ASSERT_FALSE(decoder.corrupt()) << "split at " << split;
    expect_frames_equal(got, want);
  }
}

TEST(FrameFuzz, ByteAtATimeFeedDecodesIdentically) {
  // The pathological split: one byte per read.
  std::vector<Frame> want;
  const Bytes stream = sample_stream(&want);
  FrameDecoder decoder;
  std::vector<Frame> got;
  for (const std::uint8_t byte : stream) {
    decoder.feed(std::span<const std::uint8_t>(&byte, 1));
    for (auto& frame : drain(decoder)) got.push_back(std::move(frame));
  }
  ASSERT_FALSE(decoder.corrupt());
  expect_frames_equal(got, want);
}

TEST(FrameFuzz, TruncationsNeverYieldAFrameOrCorruptTheStream) {
  // A cleanly truncated valid stream is an incomplete peer, not a
  // byzantine one: the decoder must simply wait for more bytes.
  std::vector<Frame> want;
  const Bytes stream = sample_stream(&want);
  for (std::size_t len = 0; len < stream.size(); ++len) {
    FrameDecoder decoder;
    decoder.feed(std::span<const std::uint8_t>(stream.data(), len));
    const std::vector<Frame> got = drain(decoder);
    EXPECT_LE(got.size(), want.size()) << "truncation to " << len;
    EXPECT_FALSE(decoder.corrupt()) << "truncation to " << len;
    EXPECT_EQ(decoder.buffered() + [&] {
      std::size_t consumed = 0;
      for (const Frame& f : got) consumed += kFrameOverhead + f.payload.size();
      return consumed;
    }(), len) << "truncation to " << len;
  }
}

TEST(FrameFuzz, EveryVersionByteOtherThanCurrentIsFatal) {
  const Bytes payload = payload_of(5, 1);
  for (int v = 0; v < 256; ++v) {
    Bytes wire = encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 3}, payload);
    wire[4] = static_cast<std::uint8_t>(v);
    FrameDecoder decoder;
    decoder.feed(wire);
    const auto frame = decoder.next();
    if (v == kFrameVersion) {
      ASSERT_TRUE(frame.has_value());
      EXPECT_FALSE(decoder.corrupt());
    } else {
      EXPECT_FALSE(frame.has_value()) << "version " << v;
      EXPECT_TRUE(decoder.corrupt()) << "version " << v;
    }
  }
}

TEST(FrameFuzz, EveryKindByteOutsideTheEnumIsFatal) {
  const Bytes payload = payload_of(5, 2);
  for (int k = 0; k < 256; ++k) {
    Bytes wire = encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 3}, payload);
    wire[5] = static_cast<std::uint8_t>(k);
    FrameDecoder decoder;
    decoder.feed(wire);
    const auto frame = decoder.next();
    if (k < static_cast<int>(WireKind::kCount)) {
      ASSERT_TRUE(frame.has_value()) << "kind " << k;
      EXPECT_EQ(static_cast<int>(frame->header.kind), k);
    } else {
      EXPECT_FALSE(frame.has_value()) << "kind " << k;
      EXPECT_TRUE(decoder.corrupt()) << "kind " << k;
    }
  }
}

TEST(FrameFuzz, ForgedLengthsAreFatalWithoutHugeAllocation) {
  // A length field is attacker-controlled; lying must fail fast — before
  // the decoder commits any allocation toward the claimed size — not after
  // buffering (or worse, reserving) gigabytes.
  for (const std::uint32_t lie : {0xffffffffu, 0x7fffffffu,
                                  static_cast<std::uint32_t>(kMaxFramePayload +
                                                             kFrameHeaderTail + 1),
                                  5u, 1u, 0u}) {
    Bytes wire = encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 1},
                              payload_of(8, 3));
    wire[0] = static_cast<std::uint8_t>(lie);
    wire[1] = static_cast<std::uint8_t>(lie >> 8);
    wire[2] = static_cast<std::uint8_t>(lie >> 16);
    wire[3] = static_cast<std::uint8_t>(lie >> 24);
    FrameDecoder decoder;
    decoder.feed(wire);
    EXPECT_FALSE(decoder.next().has_value()) << "length lie " << lie;
    EXPECT_TRUE(decoder.corrupt()) << "length lie " << lie;
    EXPECT_EQ(decoder.buffered(), 0u) << "corrupt decoder must release memory";
  }
}

TEST(FrameFuzz, InRangeLengthLieFailsFastOnVisibleHeaderFields) {
  // A length within bounds but larger than what will ever arrive would
  // naively buffer forever; the decoder still vets version/kind bytes the
  // moment they are visible, so garbage streams die early regardless.
  Bytes wire{0xff, 0xff, 0x01, 0x00};  // claims a ~128KiB frame
  wire.push_back(0x77);                // bogus version byte
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
}

TEST(FrameFuzz, MaximumPayloadRoundTrips) {
  // The ceiling itself is legal; one byte beyond is not encodable, and a
  // stream claiming it is fatal (covered above). Use a small decoder cap
  // so the sweep stays fast.
  constexpr std::size_t kCap = 4096;
  const Bytes payload = payload_of(kCap, 9);
  const Bytes wire = encode_frame(FrameHeader{kFrameVersion, WireKind::kFwdReply, 5},
                                  payload);
  FrameDecoder decoder(kCap);
  decoder.feed(wire);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);

  Bytes over = wire;
  const std::uint32_t len = static_cast<std::uint32_t>(kFrameHeaderTail + kCap + 1);
  over[0] = static_cast<std::uint8_t>(len);
  over[1] = static_cast<std::uint8_t>(len >> 8);
  over[2] = static_cast<std::uint8_t>(len >> 16);
  over[3] = static_cast<std::uint8_t>(len >> 24);
  FrameDecoder strict(kCap);
  strict.feed(over);
  EXPECT_FALSE(strict.next().has_value());
  EXPECT_TRUE(strict.corrupt());
}

TEST(FrameFuzz, SingleByteFlipsNeverCrashOrOverread) {
  // Systematic single-byte corruption over a multi-frame stream: each flip
  // either still decodes (payload/from flips change content, not shape),
  // resegments the tail into other — but byte-bounded — frames, or poisons
  // the stream. Never a crash, a hang, or frames beyond what the actual
  // byte count can carry.
  std::vector<Frame> want;
  const Bytes stream = sample_stream(&want);
  for (std::size_t at = 0; at < stream.size(); ++at) {
    for (const std::uint8_t pattern : {0xffu, 0x01u}) {
      Bytes tampered = stream;
      tampered[at] ^= pattern;
      FrameDecoder decoder;
      decoder.feed(tampered);
      const std::vector<Frame> got = drain(decoder);
      EXPECT_LE(got.size(), tampered.size() / kFrameOverhead) << "flip at " << at;
      std::size_t carried = 0;
      for (const Frame& f : got) carried += kFrameOverhead + f.payload.size();
      EXPECT_LE(carried, tampered.size()) << "flip at " << at;
    }
  }
}

TEST(FrameFuzz, FeedAfterCorruptionStaysInert) {
  FrameDecoder decoder;
  const Bytes bad{0x00, 0x00, 0x00, 0x00};  // len 0 < header tail: fatal
  decoder.feed(bad);
  EXPECT_FALSE(decoder.next().has_value());
  ASSERT_TRUE(decoder.corrupt());
  const Bytes good = encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 0},
                                  payload_of(4, 4));
  decoder.feed(good);  // must not resurrect the stream
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_NE(decoder.error(), nullptr);
}

}  // namespace
}  // namespace blockdag
