// FrameDecoder against adversarial byte streams: a deterministic sweep.
//
// On a real socket any peer controls every byte, and TCP adds its own
// hazard: arbitrary read-boundary splits. The decoder is the first armor
// layer (the tagged-envelope decoder, covered by
// tests/gossip/wire_fuzz_test.cpp, is the second), so it must (a) be split
// oblivious — any partition of a valid stream into feed() calls yields the
// identical frame sequence — and (b) treat every malformed prefix as a
// connection-fatal, allocation-bounded error: a forged length field can
// never cause an unbounded allocation or a hang, it latches corrupt() so
// the transport resets the connection. The sweep is deterministic —
// every split boundary, every truncation, all 256 version and kind bytes,
// targeted length lies — so a regression reproduces without a seed.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/codec.h"

namespace blockdag {
namespace {

Bytes payload_of(std::size_t n, std::uint8_t seed) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return p;
}

// Three frames of different kinds/senders/sizes, concatenated — the shape
// of a busy TCP stream (empty payloads are legal at this layer).
Bytes sample_stream(std::vector<Frame>* expect = nullptr) {
  struct Spec {
    WireKind kind;
    ServerId from;
    std::size_t size;
  };
  const Spec specs[] = {{WireKind::kBlock, 2, 57},
                        {WireKind::kFwdRequest, 0, 32},
                        {WireKind::kControl, 7, 0}};
  Bytes stream;
  for (const Spec& spec : specs) {
    const Bytes payload = payload_of(spec.size, static_cast<std::uint8_t>(spec.size));
    const FrameHeader header{kFrameVersion, spec.kind, spec.from};
    const Bytes wire = encode_frame(header, payload);
    stream.insert(stream.end(), wire.begin(), wire.end());
    if (expect) expect->push_back(Frame{header, payload});
  }
  return stream;
}

void expect_frames_equal(const std::vector<Frame>& got,
                         const std::vector<Frame>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].header.version, want[i].header.version) << "frame " << i;
    EXPECT_EQ(static_cast<int>(got[i].header.kind),
              static_cast<int>(want[i].header.kind))
        << "frame " << i;
    EXPECT_EQ(got[i].header.from, want[i].header.from) << "frame " << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << "frame " << i;
  }
}

std::vector<Frame> drain(FrameDecoder& decoder) {
  std::vector<Frame> out;
  while (auto frame = decoder.next()) out.push_back(std::move(*frame));
  return out;
}

TEST(FrameFuzz, EverySingleSplitBoundaryDecodesIdentically) {
  // TCP may hand the stream over in any two (or more) pieces; the decoder
  // must not care. Sweep every byte position as the split point.
  std::vector<Frame> want;
  const Bytes stream = sample_stream(&want);
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    decoder.feed(std::span<const std::uint8_t>(stream.data(), split));
    std::vector<Frame> got = drain(decoder);
    decoder.feed(
        std::span<const std::uint8_t>(stream.data() + split, stream.size() - split));
    for (auto& frame : drain(decoder)) got.push_back(std::move(frame));
    ASSERT_FALSE(decoder.corrupt()) << "split at " << split;
    expect_frames_equal(got, want);
  }
}

TEST(FrameFuzz, ByteAtATimeFeedDecodesIdentically) {
  // The pathological split: one byte per read.
  std::vector<Frame> want;
  const Bytes stream = sample_stream(&want);
  FrameDecoder decoder;
  std::vector<Frame> got;
  for (const std::uint8_t byte : stream) {
    decoder.feed(std::span<const std::uint8_t>(&byte, 1));
    for (auto& frame : drain(decoder)) got.push_back(std::move(frame));
  }
  ASSERT_FALSE(decoder.corrupt());
  expect_frames_equal(got, want);
}

TEST(FrameFuzz, TruncationsNeverYieldAFrameOrCorruptTheStream) {
  // A cleanly truncated valid stream is an incomplete peer, not a
  // byzantine one: the decoder must simply wait for more bytes.
  std::vector<Frame> want;
  const Bytes stream = sample_stream(&want);
  for (std::size_t len = 0; len < stream.size(); ++len) {
    FrameDecoder decoder;
    decoder.feed(std::span<const std::uint8_t>(stream.data(), len));
    const std::vector<Frame> got = drain(decoder);
    EXPECT_LE(got.size(), want.size()) << "truncation to " << len;
    EXPECT_FALSE(decoder.corrupt()) << "truncation to " << len;
    EXPECT_EQ(decoder.buffered() + [&] {
      std::size_t consumed = 0;
      for (const Frame& f : got) consumed += kFrameOverhead + f.payload.size();
      return consumed;
    }(), len) << "truncation to " << len;
  }
}

TEST(FrameFuzz, EveryVersionByteOtherThanCurrentIsFatal) {
  const Bytes payload = payload_of(5, 1);
  for (int v = 0; v < 256; ++v) {
    Bytes wire = encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 3}, payload);
    wire[4] = static_cast<std::uint8_t>(v);
    FrameDecoder decoder;
    decoder.feed(wire);
    const auto frame = decoder.next();
    if (v == kFrameVersion) {
      ASSERT_TRUE(frame.has_value());
      EXPECT_FALSE(decoder.corrupt());
    } else {
      EXPECT_FALSE(frame.has_value()) << "version " << v;
      EXPECT_TRUE(decoder.corrupt()) << "version " << v;
    }
  }
}

TEST(FrameFuzz, EveryKindByteOutsideTheEnumIsFatal) {
  const Bytes payload = payload_of(5, 2);
  for (int k = 0; k < 256; ++k) {
    Bytes wire = encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 3}, payload);
    wire[5] = static_cast<std::uint8_t>(k);
    FrameDecoder decoder;
    decoder.feed(wire);
    const auto frame = decoder.next();
    if (k < static_cast<int>(WireKind::kCount)) {
      ASSERT_TRUE(frame.has_value()) << "kind " << k;
      EXPECT_EQ(static_cast<int>(frame->header.kind), k);
    } else {
      EXPECT_FALSE(frame.has_value()) << "kind " << k;
      EXPECT_TRUE(decoder.corrupt()) << "kind " << k;
    }
  }
}

TEST(FrameFuzz, ForgedLengthsAreFatalWithoutHugeAllocation) {
  // A length field is attacker-controlled; lying must fail fast — before
  // the decoder commits any allocation toward the claimed size — not after
  // buffering (or worse, reserving) gigabytes.
  for (const std::uint32_t lie : {0xffffffffu, 0x7fffffffu,
                                  static_cast<std::uint32_t>(kMaxFramePayload +
                                                             kFrameHeaderTail + 1),
                                  5u, 1u, 0u}) {
    Bytes wire = encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 1},
                              payload_of(8, 3));
    wire[0] = static_cast<std::uint8_t>(lie);
    wire[1] = static_cast<std::uint8_t>(lie >> 8);
    wire[2] = static_cast<std::uint8_t>(lie >> 16);
    wire[3] = static_cast<std::uint8_t>(lie >> 24);
    FrameDecoder decoder;
    decoder.feed(wire);
    EXPECT_FALSE(decoder.next().has_value()) << "length lie " << lie;
    EXPECT_TRUE(decoder.corrupt()) << "length lie " << lie;
    EXPECT_EQ(decoder.buffered(), 0u) << "corrupt decoder must release memory";
  }
}

TEST(FrameFuzz, InRangeLengthLieFailsFastOnVisibleHeaderFields) {
  // A length within bounds but larger than what will ever arrive would
  // naively buffer forever; the decoder still vets version/kind bytes the
  // moment they are visible, so garbage streams die early regardless.
  Bytes wire{0xff, 0xff, 0x01, 0x00};  // claims a ~128KiB frame
  wire.push_back(0x77);                // bogus version byte
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
}

TEST(FrameFuzz, MaximumPayloadRoundTrips) {
  // The ceiling itself is legal; one byte beyond is not encodable, and a
  // stream claiming it is fatal (covered above). Use a small decoder cap
  // so the sweep stays fast.
  constexpr std::size_t kCap = 4096;
  const Bytes payload = payload_of(kCap, 9);
  const Bytes wire = encode_frame(FrameHeader{kFrameVersion, WireKind::kFwdReply, 5},
                                  payload);
  FrameDecoder decoder(kCap);
  decoder.feed(wire);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);

  Bytes over = wire;
  const std::uint32_t len = static_cast<std::uint32_t>(kFrameHeaderTail + kCap + 1);
  over[0] = static_cast<std::uint8_t>(len);
  over[1] = static_cast<std::uint8_t>(len >> 8);
  over[2] = static_cast<std::uint8_t>(len >> 16);
  over[3] = static_cast<std::uint8_t>(len >> 24);
  FrameDecoder strict(kCap);
  strict.feed(over);
  EXPECT_FALSE(strict.next().has_value());
  EXPECT_TRUE(strict.corrupt());
}

TEST(FrameFuzz, SingleByteFlipsNeverCrashOrOverread) {
  // Systematic single-byte corruption over a multi-frame stream: each flip
  // either still decodes (payload/from flips change content, not shape),
  // resegments the tail into other — but byte-bounded — frames, or poisons
  // the stream. Never a crash, a hang, or frames beyond what the actual
  // byte count can carry.
  std::vector<Frame> want;
  const Bytes stream = sample_stream(&want);
  for (std::size_t at = 0; at < stream.size(); ++at) {
    for (const std::uint8_t pattern : {0xffu, 0x01u}) {
      Bytes tampered = stream;
      tampered[at] ^= pattern;
      FrameDecoder decoder;
      decoder.feed(tampered);
      const std::vector<Frame> got = drain(decoder);
      EXPECT_LE(got.size(), tampered.size() / kFrameOverhead) << "flip at " << at;
      std::size_t carried = 0;
      for (const Frame& f : got) carried += kFrameOverhead + f.payload.size();
      EXPECT_LE(carried, tampered.size()) << "flip at " << at;
    }
  }
}

// ---- kBatch envelope (DESIGN.md §13): the batched-dissemination armor ----
//
// A kBatch payload is attacker bytes like everything else on the wire. The
// decode contract: per-entry length fields are vetted against the bytes
// actually remaining BEFORE any entry is recorded (a lie costs no
// allocation), nested batches and empty batches are refused, and a corrupt
// batch is a payload-level failure — the framing layer stays healthy, so
// the connection survives and only that batch's envelopes are lost.

// Three inner envelopes of distinct kinds and sizes, the shape gossip
// egress produces (tag byte + body each).
std::vector<Bytes> sample_inners() {
  std::vector<Bytes> inners;
  inners.push_back(encode_tagged(WireKind::kBlock, payload_of(57, 11)));
  inners.push_back(encode_tagged(WireKind::kFwdRequest, payload_of(32, 22)));
  inners.push_back(encode_tagged(WireKind::kFwdReply, payload_of(5, 33)));
  return inners;
}

Bytes sample_batch(const std::vector<Bytes>& inners) {
  std::vector<std::span<const std::uint8_t>> spans;
  for (const Bytes& inner : inners) spans.emplace_back(inner);
  return encode_batch(spans);
}

TEST(BatchFuzz, RoundTripsEveryInnerEnvelope) {
  const std::vector<Bytes> inners = sample_inners();
  const Bytes wire = sample_batch(inners);
  const auto entries = split_batch(wire);
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), inners.size());
  for (std::size_t i = 0; i < inners.size(); ++i) {
    EXPECT_EQ(static_cast<int>((*entries)[i].kind),
              static_cast<int>(inners[i][0]))
        << "entry " << i;
    // The entry spans the complete inner tagged envelope, aliasing the
    // batch buffer (no copy at split time).
    ASSERT_EQ((*entries)[i].envelope.size(), inners[i].size()) << "entry " << i;
    EXPECT_TRUE(std::equal((*entries)[i].envelope.begin(),
                           (*entries)[i].envelope.end(), inners[i].begin()))
        << "entry " << i;
    EXPECT_GE((*entries)[i].envelope.data(), wire.data());
    EXPECT_LE((*entries)[i].envelope.data() + (*entries)[i].envelope.size(),
              wire.data() + wire.size());
  }
}

TEST(BatchFuzz, TruncationAtEveryByteIsBoundedAndExactAtBoundaries) {
  // Sweep every prefix of a 3-entry batch. Because the format is a plain
  // length-prefixed sequence, a cut EXACTLY at an inner boundary is a
  // well-formed shorter batch (the sender never produces one mid-frame —
  // TCP framing already guarantees whole payloads); any other cut must be
  // rejected. Either way: no crash, no over-read, never more entries than
  // the bytes can carry.
  const std::vector<Bytes> inners = sample_inners();
  const Bytes wire = sample_batch(inners);
  // Byte offsets of the inner-entry boundaries (after the kBatch tag).
  std::vector<std::size_t> boundaries{1};
  for (const Bytes& inner : inners) {
    boundaries.push_back(boundaries.back() + 4 + inner.size());
  }
  for (std::size_t len = 0; len <= wire.size(); ++len) {
    const auto entries =
        split_batch(std::span<const std::uint8_t>(wire.data(), len));
    const auto at = std::find(boundaries.begin() + 1, boundaries.end(), len);
    if (at != boundaries.end()) {
      const auto n_complete =
          static_cast<std::size_t>(at - boundaries.begin());
      ASSERT_TRUE(entries.has_value()) << "boundary cut at " << len;
      EXPECT_EQ(entries->size(), n_complete) << "boundary cut at " << len;
    } else {
      EXPECT_FALSE(entries.has_value()) << "mid-entry cut at " << len;
    }
  }
}

TEST(BatchFuzz, ForgedLengthsRejectedBeforeAnyEntryIsRecorded) {
  const std::vector<Bytes> inners = sample_inners();
  for (const std::uint32_t lie :
       {0u, 0xffffffffu, 0x7fffffffu, 0x00010000u,
        static_cast<std::uint32_t>(sample_batch(inners).size())}) {
    Bytes wire = sample_batch(inners);
    // Patch the FIRST entry's length field (bytes 1..4): a lie at the head
    // must reject the whole batch without touching the (valid) tail.
    wire[1] = static_cast<std::uint8_t>(lie);
    wire[2] = static_cast<std::uint8_t>(lie >> 8);
    wire[3] = static_cast<std::uint8_t>(lie >> 16);
    wire[4] = static_cast<std::uint8_t>(lie >> 24);
    // A lie that happens to equal the true length is not a lie.
    if (lie == inners[0].size()) continue;
    EXPECT_FALSE(split_batch(wire).has_value()) << "length lie " << lie;
  }
}

TEST(BatchFuzz, NestedAndEmptyBatchesRefused) {
  // Nested: an inner entry claiming kind kBatch (recursion bomb otherwise).
  const std::vector<Bytes> inners = sample_inners();
  Bytes nested_inner{static_cast<std::uint8_t>(WireKind::kBatch)};
  nested_inner.push_back(0x00);
  Bytes wire{static_cast<std::uint8_t>(WireKind::kBatch)};
  const std::uint32_t len = static_cast<std::uint32_t>(nested_inner.size());
  wire.push_back(static_cast<std::uint8_t>(len));
  wire.push_back(static_cast<std::uint8_t>(len >> 8));
  wire.push_back(static_cast<std::uint8_t>(len >> 16));
  wire.push_back(static_cast<std::uint8_t>(len >> 24));
  wire.insert(wire.end(), nested_inner.begin(), nested_inner.end());
  EXPECT_FALSE(split_batch(wire).has_value());

  // Empty: the tag byte alone is not a batch (the sender never coalesces
  // zero envelopes; an empty claim is a forgery by construction).
  const Bytes empty{static_cast<std::uint8_t>(WireKind::kBatch)};
  EXPECT_FALSE(split_batch(empty).has_value());
  EXPECT_FALSE(split_batch(std::span<const std::uint8_t>{}).has_value());
}

TEST(BatchFuzz, SingleByteFlipsNeverCrashOrOverread) {
  const std::vector<Bytes> inners = sample_inners();
  const Bytes wire = sample_batch(inners);
  for (std::size_t at = 0; at < wire.size(); ++at) {
    for (const std::uint8_t pattern : {0xffu, 0x01u, 0x80u}) {
      Bytes tampered = wire;
      tampered[at] ^= pattern;
      const auto entries = split_batch(tampered);
      if (!entries) continue;  // rejected: fine
      // Accepted: every entry must lie inside the tampered buffer and the
      // entry count is bounded by what the bytes can carry (>= 5 bytes per
      // entry: length field + tag).
      EXPECT_LE(entries->size(), tampered.size() / 5) << "flip at " << at;
      for (const BatchEntry& e : *entries) {
        EXPECT_GE(e.envelope.data(), tampered.data()) << "flip at " << at;
        EXPECT_LE(e.envelope.data() + e.envelope.size(),
                  tampered.data() + tampered.size())
            << "flip at " << at;
        EXPECT_FALSE(e.envelope.empty()) << "flip at " << at;
      }
    }
  }
}

TEST(BatchFuzz, CorruptBatchPayloadLeavesTheFrameStreamLive) {
  // The transport contract: a kBatch frame whose payload fails split_batch
  // is a payload-level loss (counted, envelopes dropped), NOT a framing
  // error — the very next frame on the same connection must still decode.
  const std::vector<Bytes> inners = sample_inners();
  Bytes bad_batch = sample_batch(inners);
  bad_batch[2] ^= 0xff;  // corrupt the first length field mid-stream
  ASSERT_FALSE(split_batch(bad_batch).has_value());

  FrameDecoder decoder;
  Bytes stream = encode_frame(
      FrameHeader{kFrameVersion, WireKind::kBatch, 2}, bad_batch);
  const Bytes follow = encode_frame(
      FrameHeader{kFrameVersion, WireKind::kBlock, 2}, payload_of(16, 44));
  stream.insert(stream.end(), follow.begin(), follow.end());
  decoder.feed(stream);

  const auto first = decoder.next();
  ASSERT_TRUE(first.has_value());  // framing was intact; payload is garbage
  EXPECT_EQ(static_cast<int>(first->header.kind),
            static_cast<int>(WireKind::kBatch));
  EXPECT_FALSE(split_batch(first->payload).has_value());
  EXPECT_FALSE(decoder.corrupt());

  const auto second = decoder.next();
  ASSERT_TRUE(second.has_value());  // the connection survived the bad batch
  EXPECT_EQ(static_cast<int>(second->header.kind),
            static_cast<int>(WireKind::kBlock));
  EXPECT_FALSE(decoder.corrupt());
}

TEST(FrameFuzz, FeedAfterCorruptionStaysInert) {
  FrameDecoder decoder;
  const Bytes bad{0x00, 0x00, 0x00, 0x00};  // len 0 < header tail: fatal
  decoder.feed(bad);
  EXPECT_FALSE(decoder.next().has_value());
  ASSERT_TRUE(decoder.corrupt());
  const Bytes good = encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, 0},
                                  payload_of(4, 4));
  decoder.feed(good);  // must not resurrect the stream
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_NE(decoder.error(), nullptr);
}

}  // namespace
}  // namespace blockdag
