// SenderChannel/ReceiverChannel state machines against a deterministic
// fake clock — no sockets, no threads, no time.
//
// The channels are sans-io exactly so this test can exist: `now` is a
// plain integer, datagrams go in and out as byte vectors, and every
// retransmission deadline, backoff doubling, window stall and reset is
// observable as a pure function of the call sequence. rt/udp_transport.h
// adds only sockets and fault injection around these machines, so what is
// proven here — the backoff schedule, the retransmit cap triggering an
// epoch reset, ack coalescing, dedup-window eviction, flow control — is
// proven for the live transport too.
#include "net/datagram.h"

#include <gtest/gtest.h>

#include "net/frame.h"

namespace blockdag {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

Bytes payload_of(std::size_t n, std::uint8_t seed) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return p;
}

Bytes frame_of(std::size_t payload_size, std::uint8_t seed,
               ServerId from = 1) {
  return encode_frame(FrameHeader{kFrameVersion, WireKind::kBlock, from},
                      payload_of(payload_size, seed));
}

DatagramChannelConfig test_config() {
  DatagramChannelConfig config;
  config.mtu = kDatagramHeaderSize + 100;  // 100-byte chunks
  config.initial_rto_ns = 20 * kMs;
  config.max_rto_ns = 320 * kMs;
  config.max_retransmits = 4;
  config.window_chunks = 4;
  config.max_queued_chunks = 32;
  config.reorder_window = 8;
  config.rto_jitter = 0;  // these tests pin the exact RTO schedule
  return config;
}

std::vector<Bytes> poll_at(SenderChannel& sender, std::uint64_t now_ns) {
  std::vector<Bytes> out;
  sender.poll(now_ns, out);
  return out;
}

DatagramView view_of(const Bytes& wire) {
  const auto view = decode_datagram(wire);
  EXPECT_TRUE(view.has_value());
  return *view;
}

// Pipes a batch of datagrams into the receiver; returns completed frames.
std::vector<Frame> feed(ReceiverChannel& receiver,
                        const std::vector<Bytes>& datagrams) {
  std::vector<Frame> frames;
  for (const Bytes& d : datagrams) receiver.on_data(view_of(d), frames);
  return frames;
}

TEST(DatagramChannel, FrameChunkingRoundTripsAcrossTheWire) {
  SenderChannel sender(1, test_config());
  ReceiverChannel receiver(test_config());
  // 250 bytes of payload → 260-byte frame → 3 chunks of ≤ 100 bytes.
  const Bytes frame = frame_of(250, 7);
  ASSERT_TRUE(sender.offer(frame));
  EXPECT_EQ(sender.outstanding_chunks(), 3u);
  const auto wire = poll_at(sender, 0);
  ASSERT_EQ(wire.size(), 3u);
  for (const Bytes& d : wire) {
    EXPECT_LE(d.size(), test_config().mtu);
  }
  const auto frames = feed(receiver, wire);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload_of(250, 7));
  EXPECT_EQ(frames[0].header.from, 1u);

  // The coalesced ack retires all three chunks at once.
  const auto ack = receiver.take_ack(2);
  ASSERT_TRUE(ack.has_value());
  const auto ack_view = view_of(*ack);
  EXPECT_EQ(ack_view.header.kind, DatagramKind::kAck);
  EXPECT_EQ(ack_view.header.ack, 3u);
  sender.on_ack(ack_view.header.epoch, ack_view.header.ack);
  EXPECT_EQ(sender.outstanding_chunks(), 0u);
  EXPECT_EQ(sender.take_retired_frames(), 1u);
  EXPECT_EQ(sender.next_deadline_ns(), UINT64_MAX);  // fully idle
}

TEST(DatagramChannel, AcksCoalesceAcrossManyDeliveries) {
  SenderChannel sender(1, test_config());
  ReceiverChannel receiver(test_config());
  // Three separate frames, one chunk each, delivered in one batch: exactly
  // one ack covers them all, and a quiet receiver produces no ack at all.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(sender.offer(frame_of(10, i)));
  feed(receiver, poll_at(sender, 0));
  const auto ack = receiver.take_ack(2);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(view_of(*ack).header.ack, 3u);
  EXPECT_FALSE(receiver.take_ack(2).has_value()) << "nothing new ⇒ no ack";
  sender.on_ack(0, 3);
  EXPECT_EQ(sender.take_retired_frames(), 3u);
}

TEST(DatagramChannel, BackoffScheduleDoublesUpToTheCap) {
  // One chunk, never acked: the retransmit deadlines must follow
  // 20ms, 40ms, 80ms, 160ms after each (re)send — doubling per attempt —
  // and poll() between deadlines must emit nothing.
  DatagramChannelConfig config = test_config();
  config.max_retransmits = 10;  // cap high: this test watches the schedule
  SenderChannel sender(1, config);
  ASSERT_TRUE(sender.offer(frame_of(10, 1)));
  std::uint64_t now = 0;
  ASSERT_EQ(poll_at(sender, now).size(), 1u);  // first transmission
  const std::uint64_t backoffs[] = {20 * kMs, 40 * kMs, 80 * kMs, 160 * kMs,
                                    320 * kMs, 320 * kMs};  // capped at max
  for (const std::uint64_t backoff : backoffs) {
    EXPECT_EQ(sender.next_deadline_ns(), now + backoff);
    EXPECT_EQ(poll_at(sender, now + backoff - 1).size(), 0u)
        << "nothing due before the deadline";
    now += backoff;
    EXPECT_EQ(poll_at(sender, now).size(), 1u) << "retransmit at +" << backoff;
  }
  EXPECT_EQ(sender.stats().retransmits, 6u);
  EXPECT_EQ(sender.stats().chunks_sent, 1u);  // first sends only
}

TEST(DatagramChannel, RetransmitCapResetsTheChannelInsteadOfRetryingForever) {
  SenderChannel sender(1, test_config());  // max_retransmits = 4
  ASSERT_TRUE(sender.offer(frame_of(10, 1)));
  ASSERT_TRUE(sender.offer(frame_of(10, 2)));
  std::uint64_t now = 0;
  poll_at(sender, now);
  // Burn through the budget: 4 retransmits, then the 5th expiry resets.
  for (int attempt = 0; attempt < 4; ++attempt) {
    now = sender.next_deadline_ns();
    EXPECT_GT(poll_at(sender, now).size(), 0u);
  }
  EXPECT_EQ(sender.stats().resets, 0u);
  now = sender.next_deadline_ns();
  EXPECT_EQ(poll_at(sender, now).size(), 0u) << "the dead stream emits nothing";
  EXPECT_EQ(sender.stats().resets, 1u);
  EXPECT_EQ(sender.epoch(), 1u);
  EXPECT_EQ(sender.outstanding_chunks(), 0u);
  // Both queued frames died with the stream: transient loss, counted, and
  // both released to the idle accounting.
  EXPECT_EQ(sender.stats().frames_dropped, 2u);
  EXPECT_EQ(sender.take_retired_frames(), 2u);

  // The channel is immediately usable on the new epoch, from seq 0.
  ASSERT_TRUE(sender.offer(frame_of(10, 3)));
  const auto wire = poll_at(sender, now);
  ASSERT_EQ(wire.size(), 1u);
  const auto v = view_of(wire[0]);
  EXPECT_EQ(v.header.epoch, 1u);
  EXPECT_EQ(v.header.seq, 0u);
}

TEST(DatagramChannel, ReceiverAdoptsTheResetEpoch) {
  SenderChannel sender(1, test_config());
  ReceiverChannel receiver(test_config());
  // Deliver one frame on epoch 0, then reset the sender by exhausting the
  // retransmit cap on a second frame whose datagrams all "vanish".
  ASSERT_TRUE(sender.offer(frame_of(10, 1)));
  feed(receiver, poll_at(sender, 0));
  const auto ack = receiver.take_ack(2);
  ASSERT_TRUE(ack.has_value());
  sender.on_ack(view_of(*ack).header.epoch, view_of(*ack).header.ack);

  ASSERT_TRUE(sender.offer(frame_of(10, 2)));
  std::uint64_t now = 1;
  poll_at(sender, now);
  while (sender.stats().resets == 0) {
    now = sender.next_deadline_ns();
    poll_at(sender, now);
  }
  // Post-reset traffic starts a fresh stream; the receiver must follow the
  // epoch bump and deliver from seq 0 (not treat it as a stale duplicate).
  ASSERT_TRUE(sender.offer(frame_of(10, 3)));
  const auto frames = feed(receiver, poll_at(sender, now));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload_of(10, 3));
  EXPECT_EQ(receiver.epoch(), 1u);
  EXPECT_EQ(receiver.stats().resets, 1u);
}

TEST(DatagramChannel, WindowThrottlesUntilAcksOpenIt) {
  // window_chunks = 4: a 6-chunk backlog transmits 4, stalls, and acks
  // release the tail — flow control without any wall-clock involvement.
  SenderChannel sender(1, test_config());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(sender.offer(frame_of(10, i)));
  EXPECT_EQ(poll_at(sender, 0).size(), 4u);
  EXPECT_EQ(poll_at(sender, 1).size(), 0u) << "window full, nothing new";
  sender.on_ack(0, 2);  // two delivered
  EXPECT_EQ(poll_at(sender, 2).size(), 2u) << "freed window admits the tail";
  EXPECT_EQ(sender.stats().chunks_sent, 6u);
}

TEST(DatagramChannel, ReorderedChunksDeliverInOrder) {
  SenderChannel sender(1, test_config());
  ReceiverChannel receiver(test_config());
  const Bytes frame = frame_of(250, 9);  // 3 chunks
  ASSERT_TRUE(sender.offer(frame));
  auto wire = poll_at(sender, 0);
  ASSERT_EQ(wire.size(), 3u);
  // Deliver 2, 0, 1: nothing completes until the in-order prefix closes.
  std::vector<Frame> frames;
  receiver.on_data(view_of(wire[2]), frames);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(receiver.buffered_chunks(), 1u);
  EXPECT_FALSE(receiver.take_ack(2).has_value()) << "no progress, no ack";
  receiver.on_data(view_of(wire[0]), frames);
  EXPECT_TRUE(frames.empty());  // 0 delivered, 2 buffered, 1 missing
  receiver.on_data(view_of(wire[1]), frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload_of(250, 9));
  const auto ack = receiver.take_ack(2);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(view_of(*ack).header.ack, 3u);
}

TEST(DatagramChannel, DuplicatedRetransmissionsAreDedupedEverywhere) {
  // Duplicates in every position: already-delivered (stale seq), buffered
  // out-of-order (map hit) — each counted once, delivered zero extra times.
  SenderChannel sender(1, test_config());
  ReceiverChannel receiver(test_config());
  const Bytes frame = frame_of(250, 4);  // 3 chunks
  ASSERT_TRUE(sender.offer(frame));
  const auto wire = poll_at(sender, 0);
  std::vector<Frame> frames;
  receiver.on_data(view_of(wire[1]), frames);  // buffered
  receiver.on_data(view_of(wire[1]), frames);  // duplicate of buffered
  receiver.on_data(view_of(wire[0]), frames);  // delivers 0 and 1
  receiver.on_data(view_of(wire[0]), frames);  // duplicate of delivered
  receiver.on_data(view_of(wire[2]), frames);  // completes the frame
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload_of(250, 4));
  EXPECT_EQ(receiver.stats().duplicates, 2u);
  EXPECT_EQ(receiver.stats().chunks_delivered, 3u);
}

TEST(DatagramChannel, DedupWindowEvictsWithTheAdvancingStream) {
  // The dedup/reorder window is positional, not a cache: it spans exactly
  // [rcv_nxt, rcv_nxt + reorder_window). As delivery advances, yesterday's
  // far-future seq becomes buffarable and old seqs fall behind into the
  // "stale duplicate" class — eviction is the window sliding, so memory
  // stays bounded by reorder_window forever.
  DatagramChannelConfig config = test_config();
  SenderChannel sender(1, config);
  ReceiverChannel receiver(config);
  // 16 one-chunk frames → seqs 0..15 against a window of 8.
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(sender.offer(frame_of(10, i)));
  std::vector<Bytes> wire;
  std::uint64_t now = 0;
  while (sender.outstanding_chunks() > 0) {
    sender.poll(now, wire);  // window=4 paces the sends
    sender.on_ack(0, wire.size());
    now += config.initial_rto_ns;
  }
  ASSERT_EQ(wire.size(), 16u);

  std::vector<Frame> frames;
  receiver.on_data(view_of(wire[8]), frames);  // out of window: dropped
  EXPECT_EQ(receiver.stats().far_future_dropped, 1u);
  EXPECT_EQ(receiver.buffered_chunks(), 0u);
  receiver.on_data(view_of(wire[7]), frames);  // last in-window seq: buffered
  EXPECT_EQ(receiver.buffered_chunks(), 1u);
  for (int i = 0; i < 4; ++i) receiver.on_data(view_of(wire[i]), frames);
  EXPECT_EQ(frames.size(), 4u);  // stream advanced to seq 4 (7 still gapped)
  receiver.on_data(view_of(wire[8]), frames);  // now within [4, 12): buffered
  EXPECT_EQ(receiver.buffered_chunks(), 2u);
  receiver.on_data(view_of(wire[0]), frames);  // fell behind: stale duplicate
  EXPECT_EQ(receiver.stats().duplicates, 1u);
  for (int i = 4; i < 16; ++i) receiver.on_data(view_of(wire[i]), frames);
  EXPECT_EQ(frames.size(), 16u);
  EXPECT_EQ(receiver.buffered_chunks(), 0u);
  EXPECT_EQ(receiver.stats().duplicates, 3u);  // + replayed 7 and 8
}

TEST(DatagramChannel, OfferOverflowDropsTheWholeFrameNeverAPrefix) {
  // max_queued_chunks = 32 with 100-byte chunks: a frame that does not fit
  // whole is refused whole — a partial frame in the queue would poison the
  // byte stream for every later frame.
  SenderChannel sender(1, test_config());
  const Bytes big = frame_of(100 * 30, 1);  // ~31 chunks: fits
  ASSERT_TRUE(sender.offer(big));
  const std::size_t queued = sender.outstanding_chunks();
  const Bytes next = frame_of(100 * 3, 2);  // 4 chunks: would exceed 32
  EXPECT_FALSE(sender.offer(next));
  EXPECT_EQ(sender.outstanding_chunks(), queued) << "no partial enqueue";
  EXPECT_EQ(sender.stats().frames_dropped, 1u);
  EXPECT_EQ(sender.take_retired_frames(), 0u)
      << "a refused frame was never offered to the idle accounting";
}

TEST(DatagramChannel, RetransmissionsAreByteIdentical)  {
  // A retransmitted chunk must be byte-for-byte the original datagram:
  // same seq, same epoch, same payload — the receiver's dedup depends on
  // the identity, and a rebuilt datagram could differ after a reset race.
  SenderChannel sender(1, test_config());
  ASSERT_TRUE(sender.offer(frame_of(10, 6)));
  const auto first = poll_at(sender, 0);
  ASSERT_EQ(first.size(), 1u);
  const auto again = poll_at(sender, sender.next_deadline_ns());
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(first[0], again[0]);
  EXPECT_EQ(sender.stats().retransmits, 1u);
}

TEST(DatagramChannel, IdleSenderReportsNoDeadline) {
  SenderChannel sender(1, test_config());
  EXPECT_EQ(sender.next_deadline_ns(), UINT64_MAX);
  ASSERT_TRUE(sender.offer(frame_of(10, 1)));
  EXPECT_EQ(sender.next_deadline_ns(), 0u) << "unsent chunks want the wire now";
  poll_at(sender, 5);
  EXPECT_EQ(sender.next_deadline_ns(), 5 + test_config().initial_rto_ns);
  sender.on_ack(0, 1);
  EXPECT_EQ(sender.next_deadline_ns(), UINT64_MAX);
}

}  // namespace
}  // namespace blockdag
