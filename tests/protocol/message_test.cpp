#include "protocol/message.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace blockdag {
namespace {

Message msg(ServerId s, ServerId r, Bytes payload) {
  return Message{s, r, std::move(payload)};
}

TEST(MessageOrder, IsStrictAndTotal) {
  const MessageOrder less;
  const Message a = msg(0, 1, {1});
  const Message b = msg(0, 1, {2});
  EXPECT_TRUE(less(a, b) != less(b, a));  // antisymmetric for distinct
  EXPECT_FALSE(less(a, a));               // irreflexive
}

TEST(MessageOrder, MatchesCanonicalEncodingOrder) {
  // <M is defined as lexicographic order over canonical encodings; the
  // field-wise comparator must agree.
  Rng rng(7);
  std::vector<Message> msgs;
  for (int i = 0; i < 200; ++i) {
    Bytes payload(rng.below(6));
    for (auto& x : payload) x = static_cast<std::uint8_t>(rng.below(3));
    msgs.push_back(msg(static_cast<ServerId>(rng.below(3)),
                       static_cast<ServerId>(rng.below(3)), payload));
  }
  const MessageOrder less;
  for (const auto& a : msgs) {
    for (const auto& b : msgs) {
      const Bytes ca = a.canonical();
      const Bytes cb = b.canonical();
      const bool canon_less =
          std::lexicographical_compare(ca.begin(), ca.end(), cb.begin(), cb.end());
      EXPECT_EQ(less(a, b), canon_less);
    }
  }
}

TEST(MessageOrder, CanonicalIsInjective) {
  Rng rng(9);
  std::set<Bytes> encodings;
  std::set<std::tuple<ServerId, ServerId, Bytes>> values;
  for (int i = 0; i < 500; ++i) {
    Bytes payload(rng.below(8));
    for (auto& x : payload) x = static_cast<std::uint8_t>(rng.below(4));
    const Message m = msg(static_cast<ServerId>(rng.below(4)),
                          static_cast<ServerId>(rng.below(4)), payload);
    values.insert({m.sender, m.receiver, m.payload});
    encodings.insert(m.canonical());
  }
  EXPECT_EQ(values.size(), encodings.size());
}

TEST(MessageOrder, SenderDominates) {
  const MessageOrder less;
  EXPECT_TRUE(less(msg(0, 9, Bytes(100, 0xff)), msg(1, 0, {})));
}

TEST(MessageOrder, TransitiveOnSample) {
  Rng rng(11);
  std::vector<Message> ms;
  for (int i = 0; i < 30; ++i) {
    Bytes p(rng.below(4));
    for (auto& x : p) x = static_cast<std::uint8_t>(rng.below(4));
    ms.push_back(msg(static_cast<ServerId>(rng.below(2)),
                     static_cast<ServerId>(rng.below(2)), p));
  }
  const MessageOrder less;
  for (const auto& a : ms)
    for (const auto& b : ms)
      for (const auto& c : ms)
        if (less(a, b) && less(b, c)) {
          EXPECT_TRUE(less(a, c));
        }
}

TEST(Message, EqualityIsFieldWise) {
  EXPECT_EQ(msg(1, 2, {3}), msg(1, 2, {3}));
  EXPECT_NE(msg(1, 2, {3}), msg(1, 2, {4}));
  EXPECT_NE(msg(1, 2, {3}), msg(2, 1, {3}));
}

TEST(Message, DescribeIsHumane) {
  const std::string d = describe(msg(1, 2, {0xab}));
  EXPECT_NE(d.find("1"), std::string::npos);
  EXPECT_NE(d.find("2"), std::string::npos);
  EXPECT_NE(d.find("ab"), std::string::npos);
}

}  // namespace
}  // namespace blockdag
