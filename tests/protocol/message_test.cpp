#include "protocol/message.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"

namespace blockdag {
namespace {

Message msg(ServerId s, ServerId r, Bytes payload) {
  return Message{s, r, std::move(payload)};
}

TEST(MessageOrder, IsStrictAndTotal) {
  const MessageOrder less;
  const Message a = msg(0, 1, {1});
  const Message b = msg(0, 1, {2});
  EXPECT_TRUE(less(a, b) != less(b, a));  // antisymmetric for distinct
  EXPECT_FALSE(less(a, a));               // irreflexive
}

TEST(MessageOrder, MatchesCanonicalEncodingOrderForSingleByteFields) {
  // On values that fit in one byte (ids < 256, |payload| < 256) the
  // little-endian canonical() encoding degenerates to the big-endian one,
  // so lexicographic canonical order coincides with <M on this sample.
  // The general equivalence witness is order_key() — see the tests below.
  Rng rng(7);
  std::vector<Message> msgs;
  for (int i = 0; i < 200; ++i) {
    Bytes payload(rng.below(6));
    for (auto& x : payload) x = static_cast<std::uint8_t>(rng.below(3));
    msgs.push_back(msg(static_cast<ServerId>(rng.below(3)),
                       static_cast<ServerId>(rng.below(3)), payload));
  }
  const MessageOrder less;
  for (const auto& a : msgs) {
    for (const auto& b : msgs) {
      const Bytes ca = a.canonical();
      const Bytes cb = b.canonical();
      const bool canon_less =
          std::lexicographical_compare(ca.begin(), ca.end(), cb.begin(), cb.end());
      EXPECT_EQ(less(a, b), canon_less);
    }
  }
}

TEST(MessageOrder, CanonicalIsInjective) {
  Rng rng(9);
  std::set<Bytes> encodings;
  std::set<std::tuple<ServerId, ServerId, Bytes>> values;
  for (int i = 0; i < 500; ++i) {
    Bytes payload(rng.below(8));
    for (auto& x : payload) x = static_cast<std::uint8_t>(rng.below(4));
    const Message m = msg(static_cast<ServerId>(rng.below(4)),
                          static_cast<ServerId>(rng.below(4)), payload);
    values.insert({m.sender, m.receiver, m.payload});
    encodings.insert(m.canonical());
  }
  EXPECT_EQ(values.size(), encodings.size());
}

// Samples that cross byte boundaries and exercise payload-prefix pairs —
// exactly where a naive "compare canonical() bytes" order and the
// field-wise <M would disagree.
std::vector<Message> boundary_sample() {
  std::vector<Message> msgs;
  const std::vector<ServerId> ids = {0, 1, 2, 255, 256, 257, 65535, 65536, kInvalidServer};
  const std::vector<Bytes> payloads = {
      {},                      // empty
      {1},                     // single byte
      {1, 2},                  // extension of {1} — payload-prefix pair
      {1, 2, 3},               // deeper extension
      {2},                     // sibling of {1}
      {0xff},                  // high byte
      Bytes(255, 7),           // length 255 (one-byte length)
      Bytes(256, 7),           // length 256 (crosses the length-byte boundary)
      Bytes(257, 7),
  };
  for (ServerId s : ids) {
    for (ServerId r : {ids[0], ids[4]}) {
      for (const Bytes& p : payloads) msgs.push_back(msg(s, r, p));
    }
  }
  return msgs;
}

TEST(MessageOrder, EquivalentToLexicographicOrderKey) {
  // The allocation-free field-wise comparator IS the lexicographic order
  // over the big-endian order_key() encoding, including payload-prefix
  // cases and fields that cross byte boundaries (where canonical()'s
  // little-endian bytes would give a different order).
  const MessageOrder less;
  const std::vector<Message> msgs = boundary_sample();
  for (const auto& a : msgs) {
    for (const auto& b : msgs) {
      const Bytes ka = a.order_key();
      const Bytes kb = b.order_key();
      const bool key_less =
          std::lexicographical_compare(ka.begin(), ka.end(), kb.begin(), kb.end());
      EXPECT_EQ(less(a, b), key_less)
          << describe(a) << " vs " << describe(b);
    }
  }
}

TEST(MessageOrder, PayloadPrefixSortsBeforeExtension) {
  const MessageOrder less;
  const Message shorter = msg(1, 2, {1});
  const Message longer = msg(1, 2, {1, 2});
  EXPECT_TRUE(less(shorter, longer));
  EXPECT_FALSE(less(longer, shorter));
  // A prefix sorts before any same-length-or-longer non-prefix sibling by
  // length first: {2} (len 1) < {1, 2} (len 2) even though 2 > 1 bytewise.
  EXPECT_TRUE(less(msg(1, 2, {2}), longer));
}

TEST(MessageOrder, EquivalenceClassesAreEquality) {
  // <M is total: incomparability implies equality. The interpreter's
  // sort+unique inbox dedup relies on this (set-of-messages semantics,
  // Algorithm 2 line 9).
  const MessageOrder less;
  const std::vector<Message> msgs = boundary_sample();
  for (const auto& a : msgs) {
    for (const auto& b : msgs) {
      const bool equivalent = !less(a, b) && !less(b, a);
      EXPECT_EQ(equivalent, a == b);
    }
  }
}

TEST(MessageOrder, OrderKeyIsInjectiveOnBoundarySample) {
  std::set<Bytes> keys;
  const std::vector<Message> msgs = boundary_sample();
  for (const auto& m : msgs) keys.insert(m.order_key());
  EXPECT_EQ(keys.size(), msgs.size());
}

TEST(MessageOrder, SenderDominates) {
  const MessageOrder less;
  EXPECT_TRUE(less(msg(0, 9, Bytes(100, 0xff)), msg(1, 0, {})));
}

TEST(MessageOrder, TransitiveOnSample) {
  Rng rng(11);
  std::vector<Message> ms;
  for (int i = 0; i < 30; ++i) {
    Bytes p(rng.below(4));
    for (auto& x : p) x = static_cast<std::uint8_t>(rng.below(4));
    ms.push_back(msg(static_cast<ServerId>(rng.below(2)),
                     static_cast<ServerId>(rng.below(2)), p));
  }
  const MessageOrder less;
  for (const auto& a : ms)
    for (const auto& b : ms)
      for (const auto& c : ms)
        if (less(a, b) && less(b, c)) {
          EXPECT_TRUE(less(a, c));
        }
}

TEST(Message, EqualityIsFieldWise) {
  EXPECT_EQ(msg(1, 2, {3}), msg(1, 2, {3}));
  EXPECT_NE(msg(1, 2, {3}), msg(1, 2, {4}));
  EXPECT_NE(msg(1, 2, {3}), msg(2, 1, {3}));
}

TEST(Message, DescribeIsHumane) {
  const std::string d = describe(msg(1, 2, {0xab}));
  EXPECT_NE(d.find("1"), std::string::npos);
  EXPECT_NE(d.find("2"), std::string::npos);
  EXPECT_NE(d.find("ab"), std::string::npos);
}

}  // namespace
}  // namespace blockdag
