#include "protocol/mux.h"

#include <gtest/gtest.h>

#include "protocols/brb.h"
#include "protocols/pbft_lite.h"
#include "testing/local_net.h"

namespace blockdag {
namespace {

TEST(ProtocolMux, RoutesByLabelRange) {
  brb::BrbFactory brb_factory;
  pbft::PbftFactory pbft_factory;
  ProtocolMux mux;
  mux.mount(1, 99, brb_factory);
  mux.mount(100, 199, pbft_factory);

  EXPECT_EQ(mux.route(1), &brb_factory);
  EXPECT_EQ(mux.route(99), &brb_factory);
  EXPECT_EQ(mux.route(100), &pbft_factory);
  EXPECT_EQ(mux.route(0), nullptr);
  EXPECT_EQ(mux.route(200), nullptr);
}

TEST(ProtocolMux, RejectsOverlap) {
  brb::BrbFactory a;
  pbft::PbftFactory b;
  ProtocolMux mux;
  mux.mount(1, 10, a);
  EXPECT_THROW(mux.mount(10, 20, b), std::invalid_argument);
  EXPECT_THROW(mux.mount(0, 1, b), std::invalid_argument);
  EXPECT_THROW(mux.mount(5, 4, b), std::invalid_argument);  // empty range
  mux.mount(11, 20, b);  // adjacent is fine
}

TEST(ProtocolMux, CreatesCorrectProcessType) {
  brb::BrbFactory brb_factory;
  ProtocolMux mux;
  mux.mount(1, 10, brb_factory);

  // Routed label behaves like BRB.
  testing::LocalNet net(mux, 4, /*label=*/5);
  net.request(0, brb::make_broadcast(Bytes{1}));
  net.deliver_all();
  EXPECT_TRUE(net.has_indications(0));
}

TEST(ProtocolMux, UnroutedLabelIsInert) {
  brb::BrbFactory brb_factory;
  ProtocolMux mux;
  mux.mount(1, 10, brb_factory);

  testing::LocalNet net(mux, 4, /*label=*/999);
  net.request(0, brb::make_broadcast(Bytes{1}));
  net.deliver_all();
  EXPECT_EQ(net.messages_routed(), 0u);
  EXPECT_FALSE(net.has_indications(0));
}

TEST(ProtocolMux, InertProcessIsStable) {
  InertProcess inert(2);
  EXPECT_EQ(inert.self(), 2u);
  EXPECT_TRUE(inert.on_request(Bytes{1}).messages.empty());
  EXPECT_TRUE(inert.on_message(Message{0, 2, {1}}).indications.empty());
  EXPECT_EQ(inert.state_digest(), Bytes{});
  EXPECT_EQ(inert.clone()->self(), 2u);
}

}  // namespace
}  // namespace blockdag
