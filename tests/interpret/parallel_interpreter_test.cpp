// Differential oracle for the parallel interpretation engine
// (interpret/parallel_interpreter.h): sharding Algorithm 2 across a worker
// pool must be *observationally invisible*. For any DAG and any worker
// count, the engine must produce byte-identical digest_of() on every
// block, identical Ms[in]/Ms[out] buffers, the identical indication
// sequence (same tuples, same order), and identical WHAT-stats
// (requests/messages/clones) — only the HOW-counters (parallel_batches,
// work_units, ...) may differ from the serial interpreter.
//
// Covered here: honest random DAGs across seeds and worker counts 1/2/8,
// shard-claim-order independence (salted claim permutations), incremental
// batch-by-batch interpretation, the serial fallbacks (stopped pool, work
// below min_batch_work), equivocation forks in the parent chain, an
// adversarial byzantine-mix DAG grown by the sim cluster and re-interpreted
// offline, and the engine mounted on a live ThreadedRuntime.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "interpret/interpreter.h"
#include "interpret/parallel_interpreter.h"
#include "protocols/brb.h"
#include "rt/threaded_runtime.h"
#include "runtime/cluster.h"
#include "testing/random_dag.h"

namespace blockdag {
namespace {

using testing::BlockForge;
using testing::RandomDagConfig;
using testing::make_random_dag;

// One indication as raised by Algorithm 2 line 14; the full tuple, so
// order *and* attribution are compared.
using Raised = std::tuple<Label, Bytes, ServerId>;

struct InterpretedRun {
  std::vector<Bytes> digests;  // digest_of per block, topological order
  std::vector<Raised> indications;
  InterpreterStats stats;
};

// Interprets `dag` start-to-finish with the serial interpreter.
InterpretedRun run_serial(const BlockDag& dag, const ProtocolFactory& factory,
                          std::uint32_t n_servers) {
  InterpretedRun out;
  Interpreter interp(dag, factory, n_servers);
  interp.set_indication_handler(
      [&out](Label label, const Bytes& ind, ServerId on_behalf) {
        out.indications.emplace_back(label, ind, on_behalf);
      });
  interp.run();
  for (const BlockPtr& b : dag.topological_order()) {
    out.digests.push_back(interp.digest_of(b->ref()));
  }
  out.stats = interp.stats();
  return out;
}

// Interprets `dag` start-to-finish through a parallel engine.
InterpretedRun run_parallel(const BlockDag& dag, const ProtocolFactory& factory,
                            std::uint32_t n_servers,
                            ParallelInterpretConfig config) {
  InterpretedRun out;
  ParallelInterpreter engine(config);
  engine.start();
  Interpreter interp(dag, factory, n_servers);
  interp.set_indication_handler(
      [&out](Label label, const Bytes& ind, ServerId on_behalf) {
        out.indications.emplace_back(label, ind, on_behalf);
      });
  engine.run(interp);
  for (const BlockPtr& b : dag.topological_order()) {
    out.digests.push_back(interp.digest_of(b->ref()));
  }
  out.stats = interp.stats();
  return out;
}

// The WHAT-half of the stats contract: everything except the parallel_*
// HOW-counters must match the serial run exactly.
void expect_same_effort(const InterpreterStats& a, const InterpreterStats& b) {
  EXPECT_EQ(a.blocks_interpreted, b.blocks_interpreted);
  EXPECT_EQ(a.requests_processed, b.requests_processed);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_materialized, b.messages_materialized);
  EXPECT_EQ(a.indications, b.indications);
  EXPECT_EQ(a.instance_clones, b.instance_clones);
}

TEST(ParallelInterpreter, DifferentialAcrossWorkerCounts) {
  brb::BrbFactory factory;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::uint32_t n = 3 + static_cast<std::uint32_t>(seed % 4);  // 3..6
    BlockForge forge(n);
    RandomDagConfig cfg;
    cfg.n_servers = n;
    cfg.rounds = 10;
    cfg.broadcasts = 6;
    const auto rd = make_random_dag(forge, cfg, seed);

    const InterpretedRun serial = run_serial(rd.dag, factory, n);
    ASSERT_EQ(serial.stats.blocks_interpreted, rd.dag.size());
    // Serial interpretation never touches the engine counters.
    EXPECT_EQ(serial.stats.parallel_batches, 0u);
    EXPECT_EQ(serial.stats.work_units, 0u);

    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      ParallelInterpretConfig pcfg;
      pcfg.workers = workers;
      pcfg.min_batch_work = 0;  // force the parallel path for every batch
      const InterpretedRun par = run_parallel(rd.dag, factory, n, pcfg);
      EXPECT_EQ(par.digests, serial.digests)
          << "seed=" << seed << " workers=" << workers;
      EXPECT_EQ(par.indications, serial.indications)
          << "seed=" << seed << " workers=" << workers;
      expect_same_effort(par.stats, serial.stats);
      EXPECT_EQ(par.stats.parallel_batches, 1u);
      EXPECT_EQ(par.stats.serial_batches, 0u);
      EXPECT_GT(par.stats.work_units, 0u);
      EXPECT_GE(par.stats.work_units, par.stats.max_shard_width);
    }
  }
}

TEST(ParallelInterpreter, BuffersMatchSerialExactly) {
  brb::BrbFactory factory;
  BlockForge forge(5);
  RandomDagConfig cfg;
  cfg.n_servers = 5;
  cfg.rounds = 8;
  cfg.broadcasts = 5;
  const auto rd = make_random_dag(forge, cfg, 42);

  Interpreter serial(rd.dag, factory, 5);
  serial.run();

  ParallelInterpretConfig pcfg;
  pcfg.workers = 4;
  pcfg.min_batch_work = 0;
  ParallelInterpreter engine(pcfg);
  engine.start();
  Interpreter parallel(rd.dag, factory, 5);
  engine.run(parallel);

  // Digest agreement could in principle hide a collision; compare the
  // buffers structurally too (the lemma42 test's discipline).
  for (const BlockPtr& b : rd.dag.topological_order()) {
    const auto* s = serial.state_of(b->ref());
    const auto* p = parallel.state_of(b->ref());
    ASSERT_NE(s, nullptr);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(s->ms_in == p->ms_in) << b->ref().short_hex();
    EXPECT_TRUE(s->ms_out == p->ms_out) << b->ref().short_hex();
    ASSERT_EQ(s->pis.size(), p->pis.size());
    for (std::size_t i = 0; i < s->pis.size(); ++i) {
      EXPECT_EQ((s->pis.begin() + i)->first, (p->pis.begin() + i)->first);
      EXPECT_EQ((s->pis.begin() + i)->second->state_digest(),
                (p->pis.begin() + i)->second->state_digest());
    }
  }
}

TEST(ParallelInterpreter, ShardClaimOrderIsIrrelevant) {
  brb::BrbFactory factory;
  BlockForge forge(4);
  RandomDagConfig cfg;
  cfg.broadcasts = 6;
  cfg.rounds = 9;
  const auto rd = make_random_dag(forge, cfg, 7);

  const InterpretedRun serial = run_serial(rd.dag, factory, 4);
  for (const std::uint64_t salt : {0ull, 1ull, 0xdecafbadull, ~0ull}) {
    ParallelInterpretConfig pcfg;
    pcfg.workers = 3;
    pcfg.min_batch_work = 0;
    pcfg.shards_per_thread = 3;
    pcfg.shard_order_salt = salt;  // permutes which shard is claimed first
    const InterpretedRun par = run_parallel(rd.dag, factory, 4, pcfg);
    EXPECT_EQ(par.digests, serial.digests) << "salt=" << salt;
    EXPECT_EQ(par.indications, serial.indications) << "salt=" << salt;
  }
}

TEST(ParallelInterpreter, IncrementalBatchesMatchOneShot) {
  brb::BrbFactory factory;
  BlockForge forge(4);
  RandomDagConfig cfg;
  cfg.broadcasts = 6;
  const auto rd = make_random_dag(forge, cfg, 11);
  const InterpretedRun serial = run_serial(rd.dag, factory, 4);

  // Re-grow the DAG chunk by chunk, running the engine at every step —
  // the live deployment's shape (gossip inserts, then interpretation runs).
  ParallelInterpretConfig pcfg;
  pcfg.workers = 2;
  pcfg.min_batch_work = 0;
  ParallelInterpreter engine(pcfg);
  engine.start();
  BlockDag growing;
  Interpreter interp(growing, factory, 4);
  std::vector<Raised> indications;
  interp.set_indication_handler(
      [&indications](Label label, const Bytes& ind, ServerId on_behalf) {
        indications.emplace_back(label, ind, on_behalf);
      });
  const auto& order = rd.dag.topological_order();
  std::size_t batches = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    growing.insert(order[i]);
    if (i % 3 == 2 || i + 1 == order.size()) {
      engine.run(interp);
      ++batches;
    }
  }
  EXPECT_EQ(interp.stats().blocks_interpreted, rd.dag.size());
  EXPECT_EQ(interp.stats().parallel_batches + interp.stats().serial_batches,
            batches);
  std::vector<Bytes> digests;
  for (const BlockPtr& b : rd.dag.topological_order()) {
    digests.push_back(interp.digest_of(b->ref()));
  }
  EXPECT_EQ(digests, serial.digests);
  EXPECT_EQ(indications, serial.indications);
  expect_same_effort(interp.stats(), serial.stats);
}

TEST(ParallelInterpreter, FallsBackToSerialBelowMinBatchWork) {
  brb::BrbFactory factory;
  BlockForge forge(4);
  RandomDagConfig cfg;
  cfg.broadcasts = 3;
  const auto rd = make_random_dag(forge, cfg, 3);
  const InterpretedRun serial = run_serial(rd.dag, factory, 4);

  ParallelInterpretConfig pcfg;
  pcfg.workers = 2;
  pcfg.min_batch_work = 1u << 20;  // nothing clears this bar
  const InterpretedRun par = run_parallel(rd.dag, factory, 4, pcfg);
  EXPECT_EQ(par.digests, serial.digests);
  EXPECT_EQ(par.indications, serial.indications);
  EXPECT_EQ(par.stats.parallel_batches, 0u);
  EXPECT_EQ(par.stats.serial_batches, 1u);
  EXPECT_EQ(par.stats.work_units, 0u);
}

TEST(ParallelInterpreter, StoppedPoolDegradesToSerial) {
  brb::BrbFactory factory;
  BlockForge forge(4);
  RandomDagConfig cfg;
  cfg.broadcasts = 4;
  const auto rd = make_random_dag(forge, cfg, 5);
  const InterpretedRun serial = run_serial(rd.dag, factory, 4);

  // Never start()ed: zero pool threads, every batch takes the serial path.
  ParallelInterpretConfig pcfg;
  pcfg.workers = 4;
  pcfg.min_batch_work = 0;
  InterpretedRun par;
  {
    ParallelInterpreter engine(pcfg);
    Interpreter interp(rd.dag, factory, 4);
    interp.set_indication_handler(
        [&par](Label label, const Bytes& ind, ServerId on_behalf) {
          par.indications.emplace_back(label, ind, on_behalf);
        });
    engine.run(interp);
    for (const BlockPtr& b : rd.dag.topological_order()) {
      par.digests.push_back(interp.digest_of(b->ref()));
    }
    par.stats = interp.stats();
  }
  EXPECT_EQ(par.digests, serial.digests);
  EXPECT_EQ(par.indications, serial.indications);
  EXPECT_EQ(par.stats.parallel_batches, 0u);
  EXPECT_EQ(par.stats.serial_batches, 1u);
}

TEST(ParallelInterpreter, EquivocationForksInParentChain) {
  // Equivocating builder: two distinct blocks at (server 0, k=1), both
  // children of b0 and both referenced by server 1 — the engine's
  // inherited-state walk must resolve parents exactly as the serial
  // interpreter does, forks included.
  brb::BrbFactory factory;
  BlockForge forge(2);
  const BlockPtr b0 =
      forge.block(0, 0, {}, {{1, brb::make_broadcast(Bytes{7})}});
  const BlockPtr fork_a = forge.block(0, 1, {b0->ref()});
  const BlockPtr fork_b =
      forge.block(0, 1, {b0->ref()}, {{2, brb::make_broadcast(Bytes{9})}});
  ASSERT_NE(fork_a->ref(), fork_b->ref());
  const BlockPtr c = forge.block(1, 0, {fork_a->ref(), fork_b->ref()});
  const BlockPtr d = forge.block(0, 2, {fork_a->ref(), c->ref()});

  BlockDag dag;
  for (const BlockPtr& b : {b0, fork_a, fork_b, c, d}) {
    ASSERT_TRUE(dag.insert(b));
  }

  const InterpretedRun serial = run_serial(dag, factory, 2);
  ParallelInterpretConfig pcfg;
  pcfg.workers = 2;
  pcfg.min_batch_work = 0;
  const InterpretedRun par = run_parallel(dag, factory, 2, pcfg);
  EXPECT_EQ(par.digests, serial.digests);
  EXPECT_EQ(par.indications, serial.indications);
  expect_same_effort(par.stats, serial.stats);
}

TEST(ParallelInterpreter, ByzantineClusterDagOffline) {
  // An adversarial DAG grown by the deterministic cluster (equivocator +
  // duplicate-referencer in the mix), then re-interpreted offline: the
  // engine must agree with the serial interpreter on hostile shapes too.
  brb::BrbFactory factory;
  ClusterConfig cfg;
  cfg.n_servers = 5;
  cfg.seed = 1234;
  cfg.byzantine[3] = ByzantineKind::kEquivocator;
  cfg.byzantine[4] = ByzantineKind::kDuplicateReferencer;
  Cluster cluster(factory, cfg);
  cluster.start();
  for (std::uint32_t i = 0; i < 6; ++i) {
    cluster.request(i % 3, 1 + i, brb::make_broadcast(Bytes{static_cast<std::uint8_t>(i)}));
  }
  cluster.run_for(sim_ms(400));
  cluster.stop();

  const BlockDag& dag = cluster.shim(0).dag();
  ASSERT_GT(dag.size(), 0u);
  const InterpretedRun serial = run_serial(dag, factory, 5);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    ParallelInterpretConfig pcfg;
    pcfg.workers = workers;
    pcfg.min_batch_work = 0;
    const InterpretedRun par = run_parallel(dag, factory, 5, pcfg);
    EXPECT_EQ(par.digests, serial.digests) << "workers=" << workers;
    EXPECT_EQ(par.indications, serial.indications) << "workers=" << workers;
    expect_same_effort(par.stats, serial.stats);
  }
}

TEST(ParallelInterpreter, EngineOnThreadedRuntimeConverges) {
  // End-to-end: the engine mounted by ThreadedRuntime (forced on with two
  // workers and a zero fan-out bar), live traffic, then the standard
  // Lemma 3.7 / 4.2 convergence check plus proof the parallel path ran.
  brb::BrbFactory factory;
  rt::ThreadedConfig cfg;
  cfg.n_servers = 4;
  cfg.pacing.interval = sim_ms(2);
  cfg.interpret_workers = 2;
  cfg.interpret.min_batch_work = 0;
  rt::ThreadedRuntime runtime(factory, cfg);
  ASSERT_EQ(runtime.interpret_workers(), 2u);
  runtime.start();
  for (std::uint32_t i = 0; i < 8; ++i) {
    runtime.request(i % 4, 1 + i,
                    brb::make_broadcast(Bytes{static_cast<std::uint8_t>(i)}));
  }
  ASSERT_TRUE(runtime.quiesce_and_converge());
  const Bytes interp0 = runtime.interpretation_digest(0);
  const Bytes dag0 = runtime.dag_digest(0);
  for (ServerId s = 1; s < 4; ++s) {
    EXPECT_EQ(runtime.dag_digest(s), dag0);
    EXPECT_EQ(runtime.interpretation_digest(s), interp0);
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(runtime.indicated_count(1 + i), 4u);
  }
  const InterpreterStats stats = runtime.interpreter_stats();
  EXPECT_GT(stats.parallel_batches, 0u);
  EXPECT_GT(stats.work_units, 0u);
  runtime.shutdown();
}

}  // namespace
}  // namespace blockdag
