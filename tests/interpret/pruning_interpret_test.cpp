// Interpretation across pruning (§7 bounded-memory extension): after
// prune_below + forget_pruned, blocks above the checkpoint keep their
// states, and *new* blocks extending the pruned DAG interpret correctly
// as long as their instance state flows through surviving parents.
#include <gtest/gtest.h>

#include "interpret/interpreter.h"
#include "protocols/brb.h"
#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;

Bytes val(std::uint8_t v) { return Bytes{v}; }

struct PruningInterpret : ::testing::Test {
  BlockForge forge{4};
  BlockDag dag;
  brb::BrbFactory factory;

  // Builds a chain of `len` blocks for server 0, request at the head.
  std::vector<BlockPtr> chain;
  void build_chain(std::size_t len) {
    chain.push_back(forge.block(0, 0, {}, {{1, brb::make_broadcast(val(7))}}));
    dag.insert(chain.back());
    for (SeqNo k = 1; k < len; ++k) {
      chain.push_back(forge.block(0, k, {chain.back()->ref()}));
      dag.insert(chain.back());
    }
  }
};

TEST_F(PruningInterpret, ForgetPrunedDropsOnlyPrunedStates) {
  build_chain(10);
  Interpreter interp(dag, factory, 4);
  interp.run();
  ASSERT_TRUE(interp.is_interpreted(chain[9]->ref()));

  dag.prune_below({chain[7]->ref()});
  interp.forget_pruned();

  for (SeqNo k = 0; k < 7; ++k) {
    EXPECT_EQ(interp.state_of(chain[k]->ref()), nullptr) << "k=" << k;
  }
  for (SeqNo k = 7; k < 10; ++k) {
    ASSERT_NE(interp.state_of(chain[k]->ref()), nullptr) << "k=" << k;
    EXPECT_TRUE(interp.is_interpreted(chain[k]->ref()));
  }
}

TEST_F(PruningInterpret, NewBlocksInterpretAfterPruning) {
  build_chain(6);
  Interpreter interp(dag, factory, 4);
  interp.run();
  const Bytes digest_before_prune = interp.digest_of(chain[5]->ref());

  dag.prune_below({chain[5]->ref()});
  interp.forget_pruned();

  // Extend the surviving tip; the parent's retained state carries the
  // instance forward (echoed=true persists — no re-echo).
  const BlockPtr next = forge.block(0, 6, {chain[5]->ref()});
  ASSERT_TRUE(dag.insert(next));
  EXPECT_EQ(interp.run(), 1u);
  ASSERT_TRUE(interp.is_interpreted(next->ref()));
  // Tip state unchanged by pruning.
  EXPECT_EQ(interp.digest_of(chain[5]->ref()), digest_before_prune);
  // The new block materialized nothing (state already echoed, no quorum).
  const auto* st = interp.state_of(next->ref());
  EXPECT_TRUE(st->ms_out.empty() ||
              std::all_of(st->ms_out.begin(), st->ms_out.end(),
                          [](const auto& kv) { return kv.second.empty(); }));
}

TEST_F(PruningInterpret, StatsSurvivePruning) {
  build_chain(5);
  Interpreter interp(dag, factory, 4);
  interp.run();
  const auto blocks_before = interp.stats().blocks_interpreted;
  dag.prune_below({chain[4]->ref()});
  interp.forget_pruned();
  EXPECT_EQ(interp.stats().blocks_interpreted, blocks_before);
  EXPECT_EQ(interp.run(), 0u);  // nothing new to do, cursor resets safely
}

}  // namespace
}  // namespace blockdag
