// Lemma 4.2 / Lemma A.11 regression: interpretation is a pure function of
// the DAG — the digest of every block's post-interpretation state must not
// depend on which eligible order the interpreter happened to pick. This is
// the semantic guard for the flattened hot path: run() (dense index order)
// and a shuffled interpret_one() walk over any other eligibility-
// respecting order must agree byte-for-byte on digest_of.
//
// The copy-on-write structures this pins down: shared active-label sets,
// flat PIs/Ms buffers keyed by dense BlockIdx, and the sort+unique inbox
// realization of the Ms[in] union semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "interpret/interpreter.h"
#include "protocols/brb.h"
#include "testing/random_dag.h"
#include "util/rng.h"

namespace blockdag {
namespace {

using testing::BlockForge;
using testing::RandomDagConfig;
using testing::make_random_dag;

// Interprets every block of `dag` in a random eligibility-respecting order.
void interpret_shuffled(Interpreter& interp, const BlockDag& dag, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Hash256> remaining;
  for (const BlockPtr& b : dag.topological_order()) remaining.push_back(b->ref());
  while (!remaining.empty()) {
    // Pick a random eligible block; one must exist (order_ is topological).
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (interp.eligible(remaining[i])) eligible.push_back(i);
    }
    ASSERT_FALSE(eligible.empty());
    const std::size_t pick = eligible[rng.below(eligible.size())];
    ASSERT_TRUE(interp.interpret_one(remaining[pick]));
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
}

TEST(Lemma42Regression, RunAndShuffledOrdersAgreeOnEveryDigest) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    BlockForge forge(5);
    RandomDagConfig cfg;
    cfg.n_servers = 5;
    cfg.rounds = 8;
    cfg.broadcasts = 4;
    const auto rd = make_random_dag(forge, cfg, seed);
    brb::BrbFactory factory;

    Interpreter sequential(rd.dag, factory, 5);
    EXPECT_EQ(sequential.run(), rd.dag.size());

    Interpreter shuffled(rd.dag, factory, 5);
    interpret_shuffled(shuffled, rd.dag, seed * 977 + 13);

    for (const BlockPtr& b : rd.dag.topological_order()) {
      EXPECT_EQ(sequential.digest_of(b->ref()), shuffled.digest_of(b->ref()))
          << "seed=" << seed << " block=" << b->ref().short_hex();
      // Buffer contents agree too, not just digests (rules out digest
      // collisions hiding order dependence).
      const auto* a = sequential.state_of(b->ref());
      const auto* s = shuffled.state_of(b->ref());
      ASSERT_NE(a, nullptr);
      ASSERT_NE(s, nullptr);
      EXPECT_TRUE(a->ms_in == s->ms_in);
      EXPECT_TRUE(a->ms_out == s->ms_out);
    }
    // Aggregate effort is order-independent as well.
    EXPECT_EQ(sequential.stats().messages_delivered, shuffled.stats().messages_delivered);
    EXPECT_EQ(sequential.stats().messages_materialized,
              shuffled.stats().messages_materialized);
    EXPECT_EQ(sequential.stats().requests_processed, shuffled.stats().requests_processed);
  }
}

TEST(Lemma42Regression, IncrementalRunMatchesOneShotRun) {
  // Growing the DAG between run() calls (the gossip pattern) must land on
  // the same digests as interpreting the finished DAG in one pass.
  BlockForge forge(4);
  RandomDagConfig cfg;
  cfg.n_servers = 4;
  cfg.rounds = 7;
  cfg.broadcasts = 3;
  const auto rd = make_random_dag(forge, cfg, 42);
  brb::BrbFactory factory;

  BlockDag growing;
  Interpreter incremental(growing, factory, 4);
  for (const BlockPtr& b : rd.dag.topological_order()) {
    ASSERT_TRUE(growing.insert(b));
    incremental.run();
  }

  Interpreter oneshot(rd.dag, factory, 4);
  oneshot.run();
  for (const BlockPtr& b : rd.dag.topological_order()) {
    EXPECT_EQ(incremental.digest_of(b->ref()), oneshot.digest_of(b->ref()));
  }
}

TEST(Lemma42Regression, ActiveLabelSetsShareStorageDownChains) {
  // White-box: a block that introduces no new label must share its
  // predecessor's active-label storage (the copy-on-write fast path), and
  // sharing must not leak labels between sibling branches.
  BlockForge forge(4);
  BlockDag dag;
  const BlockPtr g0 = forge.block(0, 0, {}, {{1, brb::make_broadcast(Bytes{1})}});
  const BlockPtr b1 = forge.block(0, 1, {g0->ref()});
  const BlockPtr b2 = forge.block(0, 2, {b1->ref()});
  ASSERT_TRUE(dag.insert(g0));
  ASSERT_TRUE(dag.insert(b1));
  ASSERT_TRUE(dag.insert(b2));
  brb::BrbFactory factory;
  Interpreter interp(dag, factory, 4);
  interp.run();

  const auto* s0 = interp.state_of(g0->ref());
  const auto* s1 = interp.state_of(b1->ref());
  const auto* s2 = interp.state_of(b2->ref());
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s0->active_labels.count(1), 1u);
  // No new labels below g0 — all three share one vector.
  EXPECT_EQ(s1->active_labels.handle(), s0->active_labels.handle());
  EXPECT_EQ(s2->active_labels.handle(), s0->active_labels.handle());

  // A block adding a new label forks the storage; the ancestor set is
  // unchanged (immutability of the shared vector).
  const BlockPtr b3 = forge.block(0, 3, {b2->ref()}, {{2, brb::make_broadcast(Bytes{2})}});
  ASSERT_TRUE(dag.insert(b3));
  interp.run();
  const auto* s3 = interp.state_of(b3->ref());
  ASSERT_NE(s3, nullptr);
  EXPECT_NE(s3->active_labels.handle(), s0->active_labels.handle());
  EXPECT_EQ(s3->active_labels.count(1), 1u);
  EXPECT_EQ(s3->active_labels.count(2), 1u);
  EXPECT_EQ(s0->active_labels.count(2), 0u);
}

TEST(Lemma42Regression, CursorSurvivesPruning) {
  // forget_pruned() must not reset the incremental cursor to zero: after a
  // prune, run() resumes at the first live uninterpreted slot instead of
  // rescanning the whole order (dense indices are stable across pruning).
  BlockForge forge(4);
  BlockDag dag;
  std::vector<BlockPtr> chain;
  chain.push_back(forge.block(0, 0, {}, {{1, brb::make_broadcast(Bytes{7})}}));
  ASSERT_TRUE(dag.insert(chain.back()));
  for (SeqNo k = 1; k < 12; ++k) {
    chain.push_back(forge.block(0, k, {chain.back()->ref()}));
    ASSERT_TRUE(dag.insert(chain.back()));
  }
  brb::BrbFactory factory;
  Interpreter interp(dag, factory, 4);
  EXPECT_EQ(interp.run(), 12u);
  EXPECT_EQ(interp.resume_index(), 12u);

  dag.prune_below({chain[9]->ref()});
  interp.forget_pruned();
  EXPECT_EQ(interp.resume_index(), 12u);  // not reset to 0

  const BlockPtr next = forge.block(0, 12, {chain[11]->ref()});
  ASSERT_TRUE(dag.insert(next));
  EXPECT_EQ(interp.run(), 1u);
  EXPECT_TRUE(interp.is_interpreted(next->ref()));
  EXPECT_EQ(interp.resume_index(), 13u);
}

}  // namespace
}  // namespace blockdag
