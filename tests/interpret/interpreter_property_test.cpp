// Property sweeps over randomly generated block DAGs (TEST_P):
//   * Lemma 4.2 — interpretation is independent of the interpreting
//     server, of the eligible-block order chosen, and of DAG prefix;
//   * Lemma 4.3(2)/(3) — no duplication and authenticity at the
//     interpreter level;
//   * out-buffer provenance — Lemma A.12/A.14 invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "interpret/interpreter.h"
#include "protocols/brb.h"
#include "testing/random_dag.h"
#include "util/rng.h"

namespace blockdag {
namespace {

using testing::BlockForge;
using testing::make_random_dag;
using testing::prefix_of;
using testing::RandomDag;
using testing::RandomDagConfig;

class InterpreterProperties : public ::testing::TestWithParam<std::uint64_t> {};

RandomDag generate(BlockForge& forge, std::uint64_t seed) {
  RandomDagConfig cfg;
  cfg.n_servers = 4 + seed % 3;  // 4..6 servers
  cfg.rounds = 6 + seed % 5;     // 6..10 rounds
  cfg.broadcasts = 3;
  return make_random_dag(forge, cfg, seed);
}

TEST_P(InterpreterProperties, OrderIndependentInterpretation) {
  BlockForge forge(16);
  const RandomDag rd = generate(forge, GetParam());
  brb::BrbFactory factory;

  // Reference: topological insertion order.
  Interpreter reference(rd.dag, factory, 16);
  reference.run();

  // Shuffled: repeatedly pick a random eligible block.
  Interpreter shuffled(rd.dag, factory, 16);
  Rng rng(GetParam() ^ 0xfeed);
  std::vector<Hash256> remaining;
  for (const BlockPtr& b : rd.dag.topological_order()) remaining.push_back(b->ref());
  while (!remaining.empty()) {
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (shuffled.eligible(remaining[i])) eligible.push_back(i);
    }
    ASSERT_FALSE(eligible.empty());
    const std::size_t pick = eligible[rng.below(eligible.size())];
    ASSERT_TRUE(shuffled.interpret_one(remaining[pick]));
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  for (const BlockPtr& b : rd.dag.topological_order()) {
    ASSERT_EQ(reference.digest_of(b->ref()), shuffled.digest_of(b->ref()))
        << "divergence at block " << b->ref().short_hex();
  }
}

TEST_P(InterpreterProperties, PrefixConsistency) {
  // G ⩽ G' ⇒ identical interpretation on G's blocks (Lemma 4.2).
  BlockForge forge(16);
  const RandomDag rd = generate(forge, GetParam());
  brb::BrbFactory factory;

  Interpreter full(rd.dag, factory, 16);
  full.run();
  for (double fraction : {0.3, 0.6, 0.9}) {
    const BlockDag prefix = prefix_of(rd.dag, fraction);
    ASSERT_TRUE(prefix.subgraph_of(rd.dag));
    Interpreter partial(prefix, factory, 16);
    partial.run();
    for (const BlockPtr& b : prefix.topological_order()) {
      ASSERT_EQ(partial.digest_of(b->ref()), full.digest_of(b->ref()));
    }
  }
}

TEST_P(InterpreterProperties, NoDuplicationPerChain) {
  // Lemma 4.3(2): across each builder's chain, no in-message repeats for
  // the same label (the generator follows the reference-once discipline).
  BlockForge forge(16);
  const RandomDag rd = generate(forge, GetParam());
  brb::BrbFactory factory;
  Interpreter interp(rd.dag, factory, 16);
  interp.run();

  std::map<std::pair<ServerId, Label>, std::set<Bytes>> seen;
  for (const BlockPtr& b : rd.dag.topological_order()) {
    const auto* st = interp.state_of(b->ref());
    ASSERT_NE(st, nullptr);
    for (const auto& [label, msgs] : st->ms_in) {
      auto& bucket = seen[{b->n(), label}];
      for (const Message& m : msgs) {
        ASSERT_TRUE(bucket.insert(m.canonical()).second)
            << "duplicate delivery at server " << b->n();
      }
    }
  }
}

TEST_P(InterpreterProperties, AuthenticityAndProvenance) {
  // Lemma A.14: out-messages carry the builder as sender. Lemma A.12:
  // out-buffers only exist for labels requested somewhere in the ancestry.
  BlockForge forge(16);
  const RandomDag rd = generate(forge, GetParam());
  brb::BrbFactory factory;
  Interpreter interp(rd.dag, factory, 16);
  interp.run();

  for (const BlockPtr& b : rd.dag.topological_order()) {
    const auto* st = interp.state_of(b->ref());
    for (const auto& [label, msgs] : st->ms_out) {
      if (msgs.empty()) continue;
      EXPECT_TRUE(st->active_labels.count(label));
      EXPECT_TRUE(rd.broadcasts.count(label));
      for (const Message& m : msgs) EXPECT_EQ(m.sender, b->n());
    }
  }
}

TEST_P(InterpreterProperties, InMessagesSortedByTotalOrder) {
  // Algorithm 2 line 10: messages are fed in <M order.
  BlockForge forge(16);
  const RandomDag rd = generate(forge, GetParam());
  brb::BrbFactory factory;
  Interpreter interp(rd.dag, factory, 16);
  interp.run();

  const MessageOrder less;
  for (const BlockPtr& b : rd.dag.topological_order()) {
    const auto* st = interp.state_of(b->ref());
    for (const auto& [label, msgs] : st->ms_in) {
      (void)label;
      EXPECT_TRUE(std::is_sorted(msgs.begin(), msgs.end(), less));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpreterProperties,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace blockdag
