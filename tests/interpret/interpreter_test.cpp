#include "interpret/interpreter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "protocols/brb.h"
#include "testing/builders.h"
#include "util/rng.h"

namespace blockdag {
namespace {

using testing::BlockForge;

Bytes val(std::uint8_t v) { return Bytes{v}; }

struct InterpreterTest : ::testing::Test {
  BlockForge forge{4};
  BlockDag dag;
  brb::BrbFactory factory;
};

TEST_F(InterpreterTest, GenesisRequestMaterializesEchoes) {
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(42))}});
  dag.insert(b1);
  Interpreter interp(dag, factory, 4);
  EXPECT_EQ(interp.run(), 1u);

  const BlockInterpretation* st = interp.state_of(b1->ref());
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->interpreted);
  EXPECT_TRUE(st->ms_in.empty());  // in = ∅ at B1 (Figure 4)
  ASSERT_EQ(st->ms_out.at(1).size(), 4u);  // ECHO 42 to every server
  for (const Message& m : st->ms_out.at(1)) {
    EXPECT_EQ(m.sender, 0u);  // Lemma A.14: sender = B.n
    const auto parsed = brb::parse_message(m.payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, brb::MsgType::kEcho);
    EXPECT_EQ(parsed->value, val(42));
  }
}

TEST_F(InterpreterTest, EligibilityRequiresInterpretedPreds) {
  const BlockPtr b1 = forge.block(0, 0, {});
  const BlockPtr b2 = forge.block(0, 1, {b1->ref()});
  dag.insert(b1);
  dag.insert(b2);
  Interpreter interp(dag, factory, 4);
  EXPECT_TRUE(interp.eligible(b1->ref()));
  EXPECT_FALSE(interp.eligible(b2->ref()));
  EXPECT_FALSE(interp.interpret_one(b2->ref()));
  EXPECT_TRUE(interp.interpret_one(b1->ref()));
  EXPECT_TRUE(interp.eligible(b2->ref()));
  EXPECT_TRUE(interp.interpret_one(b2->ref()));
  EXPECT_FALSE(interp.eligible(b2->ref()));  // I[B] = true now
}

TEST_F(InterpreterTest, MessagesFlowOnlyAlongDirectEdges) {
  // B1 (s0, broadcast) → B2 (s1) → B3 (s2). B3 does not reference B1, so
  // s2's in-messages at B3 come only from B2's out-buffer.
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(7))}});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref()});
  const BlockPtr b3 = forge.block(2, 0, {b2->ref()});
  dag.insert(b1);
  dag.insert(b2);
  dag.insert(b3);
  Interpreter interp(dag, factory, 4);
  interp.run();

  const auto* st3 = interp.state_of(b3->ref());
  ASSERT_NE(st3, nullptr);
  ASSERT_EQ(st3->ms_in.at(1).size(), 1u);
  EXPECT_EQ(st3->ms_in.at(1)[0].sender, 1u);  // from s1 (B2), not s0
}

TEST_F(InterpreterTest, ReceiverFilteringIsExact) {
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(7))}});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref()});
  dag.insert(b1);
  dag.insert(b2);
  Interpreter interp(dag, factory, 4);
  interp.run();

  const auto* st2 = interp.state_of(b2->ref());
  ASSERT_EQ(st2->ms_in.at(1).size(), 1u);
  EXPECT_EQ(st2->ms_in.at(1)[0].receiver, 1u);  // only messages for B2.n
}

TEST_F(InterpreterTest, ParentStateIsCopiedNotShared) {
  // s0 broadcasts at B1; its next block B2 copies the instance state (which
  // has echoed=true) — the instance does not echo again.
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(7))}});
  const BlockPtr b2 = forge.block(0, 1, {b1->ref()});
  dag.insert(b1);
  dag.insert(b2);
  Interpreter interp(dag, factory, 4);
  interp.run();

  const auto* st2 = interp.state_of(b2->ref());
  // In-messages: s0's own ECHO (self-addressed) from B1.
  ASSERT_EQ(st2->ms_in.at(1).size(), 1u);
  // Out: nothing new — already echoed, no quorum yet.
  const auto out_it = st2->ms_out.find(1);
  EXPECT_TRUE(out_it == st2->ms_out.end() || out_it->second.empty());
}

TEST_F(InterpreterTest, OrderIndependenceLemmaA11) {
  // Interpret the same diamond DAG in every eligible order; per-block
  // digests must agree (Lemma A.11 / Lemma 4.2).
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(3))}});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref()});
  const BlockPtr b3 = forge.block(2, 0, {b1->ref()});
  const BlockPtr b4 = forge.block(3, 0, {b2->ref(), b3->ref()});
  dag.insert(b1);
  dag.insert(b2);
  dag.insert(b3);
  dag.insert(b4);

  const std::vector<std::vector<Hash256>> orders = {
      {b1->ref(), b2->ref(), b3->ref(), b4->ref()},
      {b1->ref(), b3->ref(), b2->ref(), b4->ref()},
  };
  std::vector<std::vector<Bytes>> digests;
  for (const auto& order : orders) {
    Interpreter interp(dag, factory, 4);
    for (const Hash256& ref : order) {
      ASSERT_TRUE(interp.interpret_one(ref));
    }
    std::vector<Bytes> ds;
    for (const auto& b : {b1, b2, b3, b4}) ds.push_back(interp.digest_of(b->ref()));
    digests.push_back(std::move(ds));
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST_F(InterpreterTest, PrefixDagAgreesLemma42) {
  // G ⩽ G': for blocks in G, interpretation over G and G' agree.
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(3))}});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref()});
  const BlockPtr b3 = forge.block(2, 0, {b1->ref(), b2->ref()});
  BlockDag small;
  small.insert(b1);
  small.insert(b2);
  BlockDag big;
  big.insert(b1);
  big.insert(b2);
  big.insert(b3);

  Interpreter is(small, factory, 4);
  Interpreter ib(big, factory, 4);
  is.run();
  ib.run();
  EXPECT_EQ(is.digest_of(b1->ref()), ib.digest_of(b1->ref()));
  EXPECT_EQ(is.digest_of(b2->ref()), ib.digest_of(b2->ref()));
}

TEST_F(InterpreterTest, NoDuplicationAcrossDuplicateRefs) {
  // Byzantine duplicate references (same pred twice) must deliver each
  // message once (Ms[in] is a set union — Algorithm 2 line 9).
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(5))}});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref(), b1->ref()});
  dag.insert(b1);
  dag.insert(b2);
  Interpreter interp(dag, factory, 4);
  interp.run();
  EXPECT_EQ(interp.state_of(b2->ref())->ms_in.at(1).size(), 1u);
}

TEST_F(InterpreterTest, IndicationCarriesBuilder) {
  // Build enough structure for s0 to deliver; the indication reports B.n.
  std::vector<BlockPtr> level0, level1;
  level0.push_back(forge.block(0, 0, {}, {{1, brb::make_broadcast(val(9))}}));
  dag.insert(level0[0]);
  for (ServerId s = 1; s < 4; ++s) {
    level0.push_back(forge.block(s, 0, {level0[0]->ref()}));
    dag.insert(level0.back());
  }
  std::vector<Hash256> all0;
  for (const auto& b : level0) all0.push_back(b->ref());
  for (ServerId s = 0; s < 4; ++s) {
    std::vector<Hash256> preds = all0;
    level1.push_back(forge.block(s, 1, preds));
    dag.insert(level1.back());
  }
  std::vector<Hash256> all1;
  for (const auto& b : level1) all1.push_back(b->ref());
  const BlockPtr final0 = forge.block(0, 2, all1);
  dag.insert(final0);

  std::vector<std::pair<Label, ServerId>> indications;
  Interpreter interp(dag, factory, 4);
  interp.set_indication_handler([&](Label l, const Bytes& ind, ServerId on_behalf) {
    indications.emplace_back(l, on_behalf);
    EXPECT_EQ(brb::parse_deliver(ind), val(9));
  });
  interp.run();
  ASSERT_FALSE(indications.empty());
  EXPECT_EQ(indications[0].first, 1u);
  EXPECT_EQ(indications[0].second, 0u);  // s0's own block delivered
}

TEST_F(InterpreterTest, StatsAccumulate) {
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(1))}});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref()});
  dag.insert(b1);
  dag.insert(b2);
  Interpreter interp(dag, factory, 4);
  interp.run();
  EXPECT_EQ(interp.stats().blocks_interpreted, 2u);
  EXPECT_EQ(interp.stats().requests_processed, 1u);
  EXPECT_EQ(interp.stats().messages_delivered, 1u);   // ECHO into B2
  EXPECT_EQ(interp.stats().messages_materialized, 8u);  // 4 + 4 echoes
}

TEST_F(InterpreterTest, MultipleLabelsAreIndependent) {
  // Two instances on the same blocks: out-buffers must not cross labels.
  const BlockPtr b1 = forge.block(0, 0, {},
                                  {{1, brb::make_broadcast(val(1))},
                                   {2, brb::make_broadcast(val(2))}});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref()});
  dag.insert(b1);
  dag.insert(b2);
  Interpreter interp(dag, factory, 4);
  interp.run();

  const auto* st1 = interp.state_of(b1->ref());
  ASSERT_EQ(st1->ms_out.at(1).size(), 4u);
  ASSERT_EQ(st1->ms_out.at(2).size(), 4u);
  for (const Message& m : st1->ms_out.at(1)) {
    EXPECT_EQ(brb::parse_message(m.payload)->value, val(1));
  }
  for (const Message& m : st1->ms_out.at(2)) {
    EXPECT_EQ(brb::parse_message(m.payload)->value, val(2));
  }
  const auto* st2 = interp.state_of(b2->ref());
  EXPECT_EQ(st2->ms_in.at(1).size(), 1u);
  EXPECT_EQ(st2->ms_in.at(2).size(), 1u);
}

TEST_F(InterpreterTest, ActiveLabelsPropagate) {
  const BlockPtr b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(1))}});
  const BlockPtr b2 = forge.block(1, 0, {b1->ref()}, {{2, brb::make_broadcast(val(2))}});
  const BlockPtr b3 = forge.block(2, 0, {b2->ref()});
  dag.insert(b1);
  dag.insert(b2);
  dag.insert(b3);
  Interpreter interp(dag, factory, 4);
  interp.run();
  const auto& active = interp.state_of(b3->ref())->active_labels;
  EXPECT_TRUE(active.count(1));
  EXPECT_TRUE(active.count(2));
}

TEST_F(InterpreterTest, RunIsIncremental) {
  const BlockPtr b1 = forge.block(0, 0, {});
  dag.insert(b1);
  Interpreter interp(dag, factory, 4);
  EXPECT_EQ(interp.run(), 1u);
  EXPECT_EQ(interp.run(), 0u);
  const BlockPtr b2 = forge.block(0, 1, {b1->ref()});
  dag.insert(b2);
  EXPECT_EQ(interp.run(), 1u);
}

TEST_F(InterpreterTest, DigestOfUninterpretedIsStable) {
  const BlockPtr b1 = forge.block(0, 0, {});
  dag.insert(b1);
  Interpreter interp(dag, factory, 4);
  EXPECT_EQ(interp.digest_of(b1->ref()), interp.digest_of(b1->ref()));
}

}  // namespace
}  // namespace blockdag
