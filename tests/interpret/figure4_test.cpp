// Exact reproduction of Figure 4: the message buffers for protocol
// instance ℓ1 of a block DAG with (ℓ1, broadcast(42)) ∈ B1.rs.
//
// DAG shape (4 servers s0..s3, BRB = Algorithm 4, f = 1, quorum = 3):
//
//   level 0: B1 = (s0, k0, [],  rs = [(ℓ1, broadcast(42))])
//   level 1: B2 = (s1, k0, [B1]), B3 = (s2, k0, [B1]), B4 = (s3, k0, [B1])
//   level 2: B5 = (s0, k1, [B1,B2,B3,B4]),
//            B6 = (s1, k1, [B2,B3,B4]),
//            B7 = (s2, k1, [B3,B2,B4]),
//            B8 = (s3, k1, [B4,B2,B3])
//   level 3: B9 = (s0, k2, [B5,B6,B7,B8])
//
// Expected buffers, as in the figure:
//   B1: in = ∅,                        out = ECHO 42 to {s0,s1,s2,s3}
//   B2..B4: in = ECHO 42 from {s0},    out = ECHO 42 to {s0,s1,s2,s3}
//   B6..B8: in = ECHO 42 from {s1,s2,s3}, out = READY 42 to {s0,...,s3}
//   B5: in = ECHO 42 from all four,    out = READY 42 to {s0,...,s3}
//   B9: in = READY 42 from all four → deliver(42) on behalf of s0.
//
// None of these ECHO/READY messages ever touches a wire.
#include <gtest/gtest.h>

#include <set>

#include "interpret/interpreter.h"
#include "protocols/brb.h"
#include "testing/builders.h"

namespace blockdag {
namespace {

using testing::BlockForge;

Bytes val(std::uint8_t v) { return Bytes{v}; }

struct Figure4 : ::testing::Test {
  BlockForge forge{4};
  BlockDag dag;
  brb::BrbFactory factory;
  BlockPtr b1, b2, b3, b4, b5, b6, b7, b8, b9;

  void SetUp() override {
    b1 = forge.block(0, 0, {}, {{1, brb::make_broadcast(val(42))}});
    b2 = forge.block(1, 0, {b1->ref()});
    b3 = forge.block(2, 0, {b1->ref()});
    b4 = forge.block(3, 0, {b1->ref()});
    b5 = forge.block(0, 1, {b1->ref(), b2->ref(), b3->ref(), b4->ref()});
    b6 = forge.block(1, 1, {b2->ref(), b3->ref(), b4->ref()});
    b7 = forge.block(2, 1, {b3->ref(), b2->ref(), b4->ref()});
    b8 = forge.block(3, 1, {b4->ref(), b2->ref(), b3->ref()});
    b9 = forge.block(0, 2, {b5->ref(), b6->ref(), b7->ref(), b8->ref()});
    for (const auto& b : {b1, b2, b3, b4, b5, b6, b7, b8, b9}) {
      ASSERT_TRUE(dag.insert(b));
    }
  }

  // Asserts out = `type` 42 to every server.
  void expect_out_to_all(const BlockPtr& b, brb::MsgType type) {
    const auto* st = interp_->state_of(b->ref());
    ASSERT_NE(st, nullptr);
    const auto& out = st->ms_out.at(1);
    ASSERT_EQ(out.size(), 4u);
    std::set<ServerId> receivers;
    for (const Message& m : out) {
      EXPECT_EQ(m.sender, b->n());
      receivers.insert(m.receiver);
      const auto parsed = brb::parse_message(m.payload);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(parsed->type, type);
      EXPECT_EQ(parsed->value, val(42));
    }
    EXPECT_EQ(receivers, (std::set<ServerId>{0, 1, 2, 3}));
  }

  // Asserts in = `type` 42 from exactly `senders`.
  void expect_in_from(const BlockPtr& b, brb::MsgType type,
                      const std::set<ServerId>& senders) {
    const auto* st = interp_->state_of(b->ref());
    ASSERT_NE(st, nullptr);
    const auto& in = st->ms_in.at(1);
    std::set<ServerId> got;
    for (const Message& m : in) {
      EXPECT_EQ(m.receiver, b->n());
      const auto parsed = brb::parse_message(m.payload);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(parsed->type, type);
      got.insert(m.sender);
    }
    EXPECT_EQ(got, senders);
  }

  std::unique_ptr<Interpreter> interp_;
};

TEST_F(Figure4, BufferContentsMatchThePaper) {
  interp_ = std::make_unique<Interpreter>(dag, factory, 4);
  std::vector<std::pair<Label, ServerId>> delivered;
  interp_->set_indication_handler(
      [&](Label l, const Bytes& ind, ServerId on_behalf) {
        EXPECT_EQ(brb::parse_deliver(ind), val(42));
        delivered.emplace_back(l, on_behalf);
      });
  EXPECT_EQ(interp_->run(), 9u);

  // B1: in = ∅, out = ECHO 42 to everyone.
  EXPECT_TRUE(interp_->state_of(b1->ref())->ms_in.empty());
  expect_out_to_all(b1, brb::MsgType::kEcho);

  // B2, B3, B4: in = ECHO 42 from {s0}; out = ECHO 42 to everyone.
  for (const auto& b : {b2, b3, b4}) {
    expect_in_from(b, brb::MsgType::kEcho, {0});
    expect_out_to_all(b, brb::MsgType::kEcho);
  }

  // B5 (s0's second block): echoes from all four → READY.
  expect_in_from(b5, brb::MsgType::kEcho, {0, 1, 2, 3});
  expect_out_to_all(b5, brb::MsgType::kReady);

  // B6..B8: echoes from {s1, s2, s3} (own + two peers) → READY.
  for (const auto& b : {b6, b7, b8}) {
    expect_in_from(b, brb::MsgType::kEcho, {1, 2, 3});
    expect_out_to_all(b, brb::MsgType::kReady);
  }

  // B9: READY 42 from all four → deliver(42) on behalf of s0.
  expect_in_from(b9, brb::MsgType::kReady, {0, 1, 2, 3});
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], (std::pair<Label, ServerId>{1, 0}));
}

TEST_F(Figure4, SecondInterpreterAgreesBitForBit) {
  // "Every server interpreting this block DAG can use interpret to replay
  // ... and get the same picture."
  interp_ = std::make_unique<Interpreter>(dag, factory, 4);
  interp_->run();
  Interpreter other(dag, factory, 4);
  other.run();
  for (const auto& b : {b1, b2, b3, b4, b5, b6, b7, b8, b9}) {
    EXPECT_EQ(interp_->digest_of(b->ref()), other.digest_of(b->ref()));
  }
}

TEST_F(Figure4, ParallelInstanceMaterializesInTheSameBlocks) {
  // "B1.rs may hold more requests such as broadcast(21) for ℓ2, and all
  // the messages of all these requests could be materialized in the same
  // manner — without any messages, or even additional blocks, sent."
  BlockDag dag2;
  const BlockPtr c1 = forge.block(0, 0, {},
                                  {{1, brb::make_broadcast(val(42))},
                                   {2, brb::make_broadcast(val(21))}});
  const BlockPtr c2 = forge.block(1, 0, {c1->ref()});
  dag2.insert(c1);
  dag2.insert(c2);
  Interpreter interp(dag2, factory, 4);
  interp.run();
  const auto* st = interp.state_of(c2->ref());
  ASSERT_EQ(st->ms_in.at(1).size(), 1u);
  ASSERT_EQ(st->ms_in.at(2).size(), 1u);
  EXPECT_EQ(brb::parse_message(st->ms_in.at(2)[0].payload)->value, val(21));
}

}  // namespace
}  // namespace blockdag
