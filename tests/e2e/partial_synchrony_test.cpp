// The §7 partial-synchrony extension, measured: "the block DAG
// interpretation not only creates a reliable point-to-point channel but
// also ... its delivery delay is bounded if the underlying network is
// partially synchronous." We run under a DLS-style network (chaotic
// before GST, bounded after) and check that requests issued after GST
// deliver within a fixed bound, while the chaos before GST delays but
// never breaks anything (Assumption 1 still holds).
#include <gtest/gtest.h>

#include "protocols/brb.h"
#include "protocols/pbft_lite.h"
#include "runtime/cluster.h"
#include "sim/network.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

ClusterConfig ps_config(std::uint64_t seed, SimTime gst) {
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = seed;
  cfg.pacing.interval = sim_ms(10);
  cfg.net.gst = gst;
  cfg.net.latency = {LatencyModel::Kind::kUniform, sim_ms(1), sim_ms(4)};
  cfg.net.pre_gst_latency = {LatencyModel::Kind::kHeavyTail, sim_ms(50), sim_ms(400)};
  return cfg;
}

TEST(PartialSynchrony, PreGstRequestsStillDeliverEventually) {
  brb::BrbFactory factory;
  Cluster cluster(factory, ps_config(3, sim_sec(2)));
  cluster.start();
  cluster.request(0, 1, brb::make_broadcast(val(1)));  // during chaos
  cluster.run_for(sim_sec(10));
  EXPECT_EQ(cluster.indicated_count(1), 4u);
}

TEST(PartialSynchrony, PostGstLatencyIsBounded) {
  brb::BrbFactory factory;
  Cluster cluster(factory, ps_config(5, sim_sec(1)));
  cluster.start();
  // Chaos phase with background traffic.
  cluster.request(1, 1, brb::make_broadcast(val(9)));
  cluster.run_for(sim_sec(3));  // well past GST; backlog flushed

  // Now issue fresh requests: each must deliver within the analytic
  // bound: 4 dissemination beats + 4 bounded network hops + slack.
  const SimTime bound = 4 * sim_ms(10) + 4 * sim_ms(5) + sim_ms(40);
  for (std::uint32_t i = 0; i < 6; ++i) {
    const Label label = 10 + i;
    const SimTime asked = cluster.scheduler().now();
    cluster.request(i % 4, label, brb::make_broadcast(val(static_cast<std::uint8_t>(i))));
    cluster.run_for(2 * bound);
    for (ServerId s = 0; s < 4; ++s) {
      bool found = false;
      for (const UserIndication& ind : cluster.shim(s).indications()) {
        if (ind.label == label) {
          found = true;
          EXPECT_LE(ind.at - asked, bound)
              << "server " << s << " label " << label << " took "
              << static_cast<double>(ind.at - asked) / 1e6 << "ms";
        }
      }
      EXPECT_TRUE(found) << "server " << s << " label " << label;
    }
  }
}

TEST(PartialSynchrony, PbftDecidesAfterGstWithComplaints) {
  // The full §7 story: an asynchronous period stalls consensus; after GST
  // plus externally injected complaints (the timeout surrogate), PBFT-lite
  // decides.
  pbft::PbftFactory factory;
  auto cfg = ps_config(7, sim_sec(1));
  cfg.byzantine[0] = ByzantineKind::kSilent;  // view-0 leader also silent
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(1, 1, pbft::make_propose(val(4)));
  cluster.run_for(sim_sec(2));  // chaos + silent leader: nothing decided
  EXPECT_EQ(cluster.indicated_count(1), 0u);

  for (ServerId s = 1; s < 4; ++s) cluster.request(s, 1, pbft::make_complain());
  cluster.run_for(sim_sec(3));
  EXPECT_EQ(cluster.indicated_count(1), 3u);
}

TEST(PartialSynchrony, GstZeroIsSynchronousFromStart) {
  brb::BrbFactory factory;
  Cluster cluster(factory, ps_config(11, /*gst=*/0));
  cluster.start();
  const SimTime asked = cluster.scheduler().now();
  cluster.request(0, 1, brb::make_broadcast(val(2)));
  cluster.run_for(sim_ms(500));
  ASSERT_EQ(cluster.indicated_count(1), 4u);
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_LE(cluster.shim(s).indications()[0].at - asked, sim_ms(120));
  }
}

}  // namespace
}  // namespace blockdag
