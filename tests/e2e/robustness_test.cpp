// Robustness and extension features end-to-end: partitions, heavy loss,
// WOTS signatures, non-consecutive sequence numbers, checkpoint pruning.
#include <gtest/gtest.h>

#include "protocols/brb.h"
#include "runtime/cluster.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

TEST(Robustness, PartitionHealsAndTotalityHolds) {
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 41;
  cfg.pacing.interval = sim_ms(10);
  cfg.net.latency = {LatencyModel::Kind::kFixed, sim_ms(2), 0};
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();

  // Split {0,1} from {2,3} for half a second.
  cluster.network().partition({0, 1}, {2, 3}, sim_ms(500));
  cluster.request(0, 1, brb::make_broadcast(val(8)));
  cluster.run_for(sim_ms(400));
  // 2f+1 = 3 quorums cannot form across the cut: {0,1} alone can't deliver.
  EXPECT_EQ(cluster.indicated_count(1), 0u);

  cluster.run_for(sim_sec(2));
  cluster.quiesce();
  EXPECT_EQ(cluster.indicated_count(1), 4u);
  EXPECT_TRUE(cluster.dags_converged());
}

TEST(Robustness, SurvivesHeavyTransientLoss) {
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 43;
  cfg.pacing.interval = sim_ms(10);
  cfg.net.drop_probability = 0.5;
  cfg.net.max_drops_per_pair = 40;
  cfg.gossip.fwd_retry_delay = sim_ms(15);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(3, 2, brb::make_broadcast(val(5)));
  cluster.run_for(sim_sec(5));
  EXPECT_EQ(cluster.indicated_count(2), 4u);
  EXPECT_GT(cluster.network().metrics().dropped, 0u);
}

TEST(Robustness, WotsSignaturesEndToEnd) {
  // The real hash-based signature scheme drops in for the ideal one.
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 47;
  cfg.sig_scheme = SigScheme::kWots;
  cfg.pacing.interval = sim_ms(20);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(0, 1, brb::make_broadcast(val(3)));
  cluster.run_for(sim_ms(400));
  EXPECT_EQ(cluster.indicated_count(1), 4u);
  EXPECT_GT(cluster.signatures().counters().signs, 0u);
}

TEST(Robustness, IncreasingSeqNoModeWorks) {
  // §7 extension: merely increasing sequence numbers. Honest servers still
  // use consecutive ones, so everything interoperates; the validator just
  // accepts more.
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 53;
  cfg.seq_mode = SeqNoMode::kIncreasing;
  cfg.pacing.interval = sim_ms(10);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(1, 4, brb::make_broadcast(val(6)));
  cluster.run_for(sim_ms(400));
  EXPECT_EQ(cluster.indicated_count(4), 4u);
}

TEST(Robustness, PruningKeepsInterpretingNewBlocks) {
  // §7 bounded-memory extension: after delivery, prune everything below
  // each server's latest block; gossip + interpretation continue on top.
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 59;
  cfg.pacing.interval = sim_ms(10);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(0, 1, brb::make_broadcast(val(1)));
  cluster.run_for(sim_sec(1));
  ASSERT_EQ(cluster.indicated_count(1), 4u);

  // NOTE: pruning is exercised on a *copy* of a server's DAG — the live
  // gossip DAG is append-only by design (the paper's limitation §7 is that
  // safe pruning needs a protocol-level "no longer needed" signal, which
  // BRB does not emit; the primitive itself is tested here and in
  // dag_test.cpp).
  BlockDag copy;
  copy.absorb(cluster.shim(0).dag());
  const std::size_t before = copy.size();
  // Checkpoints: each server's highest block.
  std::map<ServerId, BlockPtr> tips;
  for (const BlockPtr& b : copy.topological_order()) {
    auto& tip = tips[b->n()];
    if (!tip || b->k() > tip->k()) tip = b;
  }
  std::vector<Hash256> checkpoints;
  for (const auto& [n, b] : tips) {
    (void)n;
    checkpoints.push_back(b->ref());
  }
  const std::size_t removed = copy.prune_below(checkpoints);
  EXPECT_GT(removed, before / 2);
  EXPECT_EQ(copy.size(), before - removed);
}

TEST(Robustness, LongRunManyInstancesStaysConsistent) {
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 61;
  cfg.pacing.interval = sim_ms(5);
  cfg.net.latency = {LatencyModel::Kind::kHeavyTail, sim_ms(1), sim_ms(4)};
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  for (Label l = 1; l <= 64; ++l) {
    cluster.request(l % 4, l, brb::make_broadcast(val(static_cast<std::uint8_t>(l))));
  }
  cluster.run_for(sim_sec(4));
  cluster.quiesce();
  for (Label l = 1; l <= 64; ++l) {
    EXPECT_EQ(cluster.indicated_count(l), 4u) << "label " << l;
  }
  EXPECT_TRUE(cluster.dags_converged());
}

TEST(Robustness, DeterministicReplayOfWholeCluster) {
  // Two identically-seeded clusters produce byte-identical DAGs and
  // indication logs — the simulation substrate is fully deterministic.
  const auto run = [] {
    ClusterConfig cfg;
    cfg.n_servers = 4;
    cfg.seed = 67;
    cfg.pacing.interval = sim_ms(10);
    cfg.net.latency = {LatencyModel::Kind::kUniform, sim_ms(1), sim_ms(9)};
    brb::BrbFactory factory;
    Cluster cluster(factory, cfg);
    cluster.start();
    cluster.request(0, 1, brb::make_broadcast(val(1)));
    cluster.request(2, 2, brb::make_broadcast(val(2)));
    cluster.run_for(sim_sec(1));
    std::vector<Hash256> order;
    for (const BlockPtr& b : cluster.shim(0).dag().topological_order()) {
      order.push_back(b->ref());
    }
    std::vector<std::pair<Label, SimTime>> inds;
    for (const auto& i : cluster.shim(3).indications()) {
      inds.emplace_back(i.label, i.at);
    }
    return std::make_pair(order, inds);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace blockdag
