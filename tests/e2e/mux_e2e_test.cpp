// Mixed protocol fleet on one DAG: BRB payments, PBFT consensus slots and
// a coin beacon share the same blocks via ProtocolMux — the "multiple
// instances for free" claim generalized to multiple *protocols*.
#include <gtest/gtest.h>

#include "dag/audit.h"
#include "protocol/mux.h"
#include "protocols/brb.h"
#include "protocols/coin_beacon.h"
#include "protocols/pbft_lite.h"
#include "runtime/cluster.h"
#include "util/rng.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

TEST(MuxE2E, ThreeProtocolsShareOneDag) {
  brb::BrbFactory brb_factory;
  pbft::PbftFactory pbft_factory;
  beacon::BeaconFactory beacon_factory;
  ProtocolMux mux;
  mux.mount(1, 99, brb_factory);       // labels 1..99: broadcasts
  mux.mount(100, 199, pbft_factory);   // labels 100..199: consensus slots
  mux.mount(200, 299, beacon_factory); // labels 200..299: beacons

  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 71;
  cfg.pacing.interval = sim_ms(10);
  Cluster cluster(mux, cfg);
  cluster.start();

  cluster.request(0, 1, brb::make_broadcast(val(11)));
  cluster.request(1, 2, brb::make_broadcast(val(22)));
  cluster.request(0, 100, pbft::make_propose(val(33)));
  cluster.request(0, 200, beacon::make_contribute(0xA));
  cluster.request(1, 200, beacon::make_contribute(0xB));
  cluster.request(3, 999, val(1));  // unrouted: must be harmlessly inert

  cluster.run_for(sim_sec(2));

  // All three protocols completed at every server, off the same blocks.
  EXPECT_EQ(cluster.indicated_count(1), 4u);
  EXPECT_EQ(cluster.indicated_count(2), 4u);
  EXPECT_EQ(cluster.indicated_count(100), 4u);
  EXPECT_EQ(cluster.indicated_count(200), 4u);
  EXPECT_EQ(cluster.indicated_count(999), 0u);

  // Check values per protocol at one server.
  std::map<Label, Bytes> inds;
  for (const UserIndication& i : cluster.shim(2).indications()) {
    inds[i.label] = i.indication;
  }
  EXPECT_EQ(brb::parse_deliver(inds.at(1)), val(11));
  EXPECT_EQ(brb::parse_deliver(inds.at(2)), val(22));
  EXPECT_EQ(pbft::parse_decide(inds.at(100)), val(33));
  EXPECT_EQ(beacon::parse_beacon(inds.at(200)), 0xA ^ 0xB);
}

TEST(MuxE2E, BeaconAgreesAcrossServersThroughDag) {
  // The §7 de-randomization recipe end-to-end: locally drawn coins enter
  // blocks as requests; every server derives the same beacon output.
  beacon::BeaconFactory factory;
  ClusterConfig cfg;
  cfg.n_servers = 7;
  cfg.seed = 73;
  cfg.pacing.interval = sim_ms(10);
  Cluster cluster(factory, cfg);
  cluster.start();

  Rng local(999);  // "randomness at the discretion of a server" — outside P
  for (ServerId s = 0; s < 7; ++s) {
    cluster.request(s, 1, beacon::make_contribute(local.next()));
  }
  cluster.run_for(sim_sec(2));

  std::optional<std::uint64_t> agreed;
  std::size_t count = 0;
  for (ServerId s = 0; s < 7; ++s) {
    for (const UserIndication& i : cluster.shim(s).indications()) {
      const auto v = beacon::parse_beacon(i.indication);
      ASSERT_TRUE(v.has_value());
      if (!agreed) agreed = v;
      EXPECT_EQ(v, agreed);
      ++count;
    }
  }
  EXPECT_EQ(count, 7u);
  EXPECT_TRUE(agreed.has_value());
}

TEST(MuxE2E, AuditOfHonestClusterIsClean) {
  brb::BrbFactory factory;
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 79;
  cfg.pacing.interval = sim_ms(10);
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(0, 1, brb::make_broadcast(val(1)));
  cluster.run_for(sim_ms(500));
  cluster.quiesce();

  const AuditReport report = audit(cluster.shim(0).dag());
  EXPECT_TRUE(report.suspects().empty()) << report.summary();
  EXPECT_TRUE(report.dangling_refs.empty());
}

TEST(MuxE2E, AuditOfEquivocatorClusterNamesTheOffender) {
  brb::BrbFactory factory;
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 83;
  cfg.pacing.interval = sim_ms(10);
  cfg.byzantine[2] = ByzantineKind::kEquivocator;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(0, 1, brb::make_broadcast(val(1)));
  cluster.run_for(sim_sec(1));
  cluster.quiesce();

  const AuditReport report = audit(cluster.shim(0).dag());
  const auto suspects = report.suspects();
  ASSERT_EQ(suspects.size(), 1u) << report.summary();
  EXPECT_EQ(suspects[0], 2u);
}

}  // namespace
}  // namespace blockdag
