// Theorem 5.1 end-to-end: shim(BRB) implements BRB's interface and
// preserves its properties. Parameterized over cluster size and seeds —
// the closest executable analogue of "for any deterministic BFT protocol
// P and any run".
#include <gtest/gtest.h>

#include "baseline/direct_node.h"
#include "protocols/brb.h"
#include "runtime/checkers.h"
#include "runtime/cluster.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

struct SweepParam {
  std::uint32_t n;
  std::uint64_t seed;
  double drop;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "n" + std::to_string(info.param.n) + "_seed" +
         std::to_string(info.param.seed) + "_drop" +
         std::to_string(static_cast<int>(info.param.drop * 100));
}

class TheoremSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TheoremSweep, BrbPropertiesHoldUnderShim) {
  const SweepParam p = GetParam();
  ClusterConfig cfg;
  cfg.n_servers = p.n;
  cfg.seed = p.seed;
  cfg.pacing.interval = sim_ms(10);
  cfg.net.latency = {LatencyModel::Kind::kUniform, sim_ms(1), sim_ms(15)};
  cfg.net.drop_probability = p.drop;
  cfg.net.max_drops_per_pair = 5;
  cfg.gossip.fwd_retry_delay = sim_ms(20);

  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  BrbChecker checker;

  cluster.start();
  // Every server broadcasts one value on its own instance.
  for (ServerId s = 0; s < p.n; ++s) {
    const Label label = 100 + s;
    const Bytes value = val(static_cast<std::uint8_t>(s + 1));
    checker.expect_broadcast(label, s, brb::make_broadcast(value), true);
    cluster.request(s, label, brb::make_broadcast(value));
  }
  cluster.run_for(sim_sec(2));
  cluster.quiesce();

  for (ServerId s = 0; s < p.n; ++s) {
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      const auto v = brb::parse_deliver(ind.indication);
      ASSERT_TRUE(v.has_value());
      checker.record_delivery(s, ind.label, brb::make_broadcast(*v));
    }
  }
  const auto violations = checker.violations(cluster.correct_servers(),
                                             /*run_completed=*/true);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_TRUE(cluster.dags_converged());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremSweep,
    ::testing::Values(SweepParam{4, 1, 0.0}, SweepParam{4, 2, 0.0},
                      SweepParam{4, 3, 0.2}, SweepParam{7, 1, 0.0},
                      SweepParam{7, 2, 0.1}, SweepParam{10, 1, 0.0},
                      SweepParam{10, 7, 0.05}, SweepParam{13, 1, 0.0}),
    param_name);

TEST(Theorem, ShimMatchesDirectBaselineOutcome) {
  // The same protocol over (a) the block DAG embedding and (b) a direct
  // reliable network delivers the same values at every correct server —
  // the observable content of Theorem 5.1.
  constexpr std::uint32_t kN = 4;
  brb::BrbFactory factory;

  // (a) shim.
  ClusterConfig cfg;
  cfg.n_servers = kN;
  cfg.seed = 5;
  cfg.pacing.interval = sim_ms(10);
  Cluster cluster(factory, cfg);
  cluster.start();
  for (ServerId s = 0; s < kN; ++s) {
    cluster.request(s, 10 + s, brb::make_broadcast(val(static_cast<std::uint8_t>(s))));
  }
  cluster.run_for(sim_sec(1));

  // (b) direct.
  Scheduler sched;
  SimNetwork net(sched, kN, {});
  IdealSignatureProvider sigs(kN, 5);
  std::vector<std::unique_ptr<DirectProtocolNode>> nodes;
  for (ServerId s = 0; s < kN; ++s) {
    nodes.push_back(std::make_unique<DirectProtocolNode>(s, sched, net, sigs,
                                                         factory, kN));
  }
  for (ServerId s = 0; s < kN; ++s) {
    nodes[s]->request(10 + s, brb::make_broadcast(val(static_cast<std::uint8_t>(s))));
  }
  sched.run();

  for (ServerId s = 0; s < kN; ++s) {
    // Same number of deliveries...
    ASSERT_EQ(cluster.shim(s).indications().size(), nodes[s]->indications().size());
    // ...and per label the same delivered value.
    std::map<Label, Bytes> via_shim, via_direct;
    for (const auto& i : cluster.shim(s).indications()) via_shim[i.label] = i.indication;
    for (const auto& i : nodes[s]->indications()) via_direct[i.label] = i.indication;
    EXPECT_EQ(via_shim, via_direct);
  }
}

TEST(Theorem, ReliablePointToPointNoDuplicationLemma43) {
  // Run a long multi-instance workload and assert no correct server's
  // interpretation ever fed the same message twice into the same instance
  // (Lemma 4.3(2)). BRB would mask duplicates (set-based quorums), so
  // check at the interpreter level: per (block-chain, label), in-messages
  // across a server's own chain are pairwise distinct.
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 11;
  cfg.pacing.interval = sim_ms(10);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  for (Label l = 1; l <= 5; ++l) {
    cluster.request(l % 4, l, brb::make_broadcast(val(static_cast<std::uint8_t>(l))));
  }
  cluster.run_for(sim_sec(1));

  const auto& interp = cluster.shim(0).interpreter();
  const BlockDag& dag = cluster.shim(0).dag();
  // Collect in-messages per (builder, label) across all blocks.
  std::map<std::pair<ServerId, Label>, std::multiset<Bytes>> seen;
  for (const BlockPtr& b : dag.topological_order()) {
    const auto* st = interp.state_of(b->ref());
    ASSERT_NE(st, nullptr);
    for (const auto& [label, msgs] : st->ms_in) {
      for (const Message& m : msgs) {
        seen[{b->n(), label}].insert(m.canonical());
      }
    }
  }
  for (const auto& [key, msgs] : seen) {
    for (const Bytes& m : msgs) {
      EXPECT_EQ(msgs.count(m), 1u)
          << "message delivered twice to server " << key.first << " label "
          << key.second;
    }
  }
}

TEST(Theorem, AuthenticityLemma43) {
  // Every in-message's sender matches the builder of the block whose
  // out-buffer produced it (Lemma 4.3(3) via Lemma A.14).
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 13;
  cfg.pacing.interval = sim_ms(10);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(0, 1, brb::make_broadcast(val(42)));
  cluster.run_for(sim_ms(500));

  const auto& interp = cluster.shim(1).interpreter();
  const BlockDag& dag = cluster.shim(1).dag();
  for (const BlockPtr& b : dag.topological_order()) {
    const auto* st = interp.state_of(b->ref());
    for (const auto& [label, msgs] : st->ms_out) {
      (void)label;
      for (const Message& m : msgs) EXPECT_EQ(m.sender, b->n());
    }
  }
}

TEST(Theorem, InterpretationsAgreeAcrossServers) {
  // Lemma 4.2 at full-system scale: for every block present in two correct
  // servers' DAGs, their interpretation states agree bit-for-bit.
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 17;
  cfg.pacing.interval = sim_ms(10);
  cfg.net.latency = {LatencyModel::Kind::kUniform, sim_ms(1), sim_ms(20)};
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  for (Label l = 1; l <= 8; ++l) {
    cluster.request(l % 4, l, brb::make_broadcast(val(static_cast<std::uint8_t>(l))));
  }
  cluster.run_for(sim_sec(1));

  std::size_t compared = 0;
  for (ServerId a = 0; a < 4; ++a) {
    for (ServerId b = a + 1; b < 4; ++b) {
      for (const BlockPtr& blk : cluster.shim(a).dag().topological_order()) {
        if (!cluster.shim(b).dag().contains(blk->ref())) continue;
        if (!cluster.shim(a).interpreter().is_interpreted(blk->ref()) ||
            !cluster.shim(b).interpreter().is_interpreted(blk->ref())) {
          continue;
        }
        EXPECT_EQ(cluster.shim(a).interpreter().digest_of(blk->ref()),
                  cluster.shim(b).interpreter().digest_of(blk->ref()));
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 100u);
}

}  // namespace
}  // namespace blockdag
