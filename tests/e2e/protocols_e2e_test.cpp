// Black-box genericity: the same shim embeds BCB, FIFO-BRB and PBFT-lite
// unchanged — the framework never looks inside P.
#include <gtest/gtest.h>

#include "protocols/bcb.h"
#include "protocols/fifo_brb.h"
#include "protocols/pbft_lite.h"
#include "runtime/checkers.h"
#include "runtime/cluster.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

ClusterConfig quick(std::uint32_t n, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_servers = n;
  cfg.seed = seed;
  cfg.pacing.interval = sim_ms(10);
  cfg.net.latency = {LatencyModel::Kind::kUniform, sim_ms(1), sim_ms(8)};
  return cfg;
}

TEST(ProtocolsE2E, BcbDeliversEverywhere) {
  bcb::BcbFactory factory;
  Cluster cluster(factory, quick(4, 31));
  cluster.start();
  cluster.request(2, 5, bcb::make_send(val(77)));
  cluster.run_for(sim_sec(1));
  for (ServerId s = 0; s < 4; ++s) {
    ASSERT_EQ(cluster.shim(s).indications().size(), 1u);
    EXPECT_EQ(bcb::parse_deliver(cluster.shim(s).indications()[0].indication),
              val(77));
  }
}

TEST(ProtocolsE2E, FifoStreamsStayOrderedThroughTheDag) {
  fifo::FifoBrbFactory factory;
  Cluster cluster(factory, quick(4, 32));
  cluster.start();
  // Server 1 broadcasts a stream of 10 values on one instance.
  for (std::uint8_t i = 0; i < 10; ++i) {
    cluster.request(1, 3, fifo::make_broadcast(val(i)));
  }
  cluster.run_for(sim_sec(2));

  for (ServerId s = 0; s < 4; ++s) {
    const auto& inds = cluster.shim(s).indications();
    ASSERT_EQ(inds.size(), 10u) << "server " << s;
    for (std::uint8_t i = 0; i < 10; ++i) {
      const auto d = fifo::parse_deliver(inds[i].indication);
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->origin, 1u);
      EXPECT_EQ(d->seq, i);     // FIFO order preserved end-to-end
      EXPECT_EQ(d->value, val(i));
    }
  }
}

TEST(ProtocolsE2E, FifoTwoOriginsInterleave) {
  fifo::FifoBrbFactory factory;
  Cluster cluster(factory, quick(4, 33));
  cluster.start();
  for (std::uint8_t i = 0; i < 5; ++i) {
    cluster.request(0, 9, fifo::make_broadcast(val(i)));
    cluster.request(2, 9, fifo::make_broadcast(val(100 + i)));
  }
  cluster.run_for(sim_sec(2));
  for (ServerId s = 0; s < 4; ++s) {
    std::map<ServerId, std::uint64_t> next_seq;
    std::size_t count = 0;
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      const auto d = fifo::parse_deliver(ind.indication);
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->seq, next_seq[d->origin]++);
      ++count;
    }
    EXPECT_EQ(count, 10u);
  }
}

TEST(ProtocolsE2E, PbftNormalCaseDecides) {
  pbft::PbftFactory factory;
  Cluster cluster(factory, quick(4, 34));
  ConsensusChecker checker;
  cluster.start();
  checker.expect_proposal(1, 0, val(42));
  cluster.request(0, 1, pbft::make_propose(val(42)));  // server 0 leads view 0
  cluster.run_for(sim_sec(1));

  for (ServerId s = 0; s < 4; ++s) {
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      const auto v = pbft::parse_decide(ind.indication);
      ASSERT_TRUE(v.has_value());
      checker.record_decision(s, ind.label, *v);
    }
  }
  const auto violations =
      checker.violations(cluster.correct_servers(), /*expect_termination=*/true);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ProtocolsE2E, PbftSilentLeaderViewChangeViaComplaints) {
  // The view-0 leader (server 0) is byzantine-silent. Correct servers
  // inscribe complain() requests — the §7 pattern of externalizing
  // timeouts as explicit requests in blocks — and view 1 decides.
  ClusterConfig cfg = quick(4, 35);
  cfg.byzantine[0] = ByzantineKind::kSilent;
  pbft::PbftFactory factory;
  Cluster cluster(factory, cfg);
  ConsensusChecker checker;
  cluster.start();
  checker.expect_proposal(1, 1, val(9));
  cluster.request(1, 1, pbft::make_propose(val(9)));
  cluster.run_for(sim_ms(300));
  // Nobody decided yet; complaints fire.
  EXPECT_EQ(cluster.indicated_count(1), 0u);
  for (ServerId s = 1; s < 4; ++s) cluster.request(s, 1, pbft::make_complain());
  cluster.run_for(sim_sec(2));

  for (ServerId s : cluster.correct_servers()) {
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      const auto v = pbft::parse_decide(ind.indication);
      ASSERT_TRUE(v.has_value());
      checker.record_decision(s, ind.label, *v);
    }
  }
  const auto violations = checker.violations(cluster.correct_servers(), true);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_EQ(cluster.indicated_count(1), 3u);
}

TEST(ProtocolsE2E, PbftManyParallelSlots) {
  pbft::PbftFactory factory;
  Cluster cluster(factory, quick(4, 36));
  ConsensusChecker checker;
  cluster.start();
  for (Label l = 1; l <= 20; ++l) {
    const Bytes v = val(static_cast<std::uint8_t>(l));
    checker.expect_proposal(l, 0, v);
    cluster.request(0, l, pbft::make_propose(v));
  }
  cluster.run_for(sim_sec(2));
  for (ServerId s = 0; s < 4; ++s) {
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      checker.record_decision(s, ind.label, *pbft::parse_decide(ind.indication));
    }
  }
  const auto violations = checker.violations(cluster.correct_servers(), true);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ProtocolsE2E, MixedWorkloadAcrossLabels) {
  // Different labels run independent instances of the same P; a heavy
  // concurrent workload from all servers stays consistent.
  fifo::FifoBrbFactory factory;
  Cluster cluster(factory, quick(7, 37));
  cluster.start();
  for (ServerId s = 0; s < 7; ++s) {
    for (std::uint8_t i = 0; i < 3; ++i) {
      cluster.request(s, 1 + (s % 3), fifo::make_broadcast(val(s * 10 + i)));
    }
  }
  cluster.run_for(sim_sec(3));
  // Every server sees the same multiset of deliveries per label.
  std::map<Label, std::multiset<Bytes>> reference;
  for (const UserIndication& ind : cluster.shim(0).indications()) {
    reference[ind.label].insert(ind.indication);
  }
  EXPECT_FALSE(reference.empty());
  for (ServerId s = 1; s < 7; ++s) {
    std::map<Label, std::multiset<Bytes>> mine;
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      mine[ind.label].insert(ind.indication);
    }
    EXPECT_EQ(mine, reference) << "server " << s;
  }
}

}  // namespace
}  // namespace blockdag
