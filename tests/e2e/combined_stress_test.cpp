// Combined adversity: everything at once. Real deployments do not get to
// face one fault at a time; these runs combine byzantine servers, loss,
// partitions, WOTS signatures, mixed protocols and pre-GST chaos.
#include <gtest/gtest.h>

#include "protocol/mux.h"
#include "protocols/brb.h"
#include "protocols/coin_beacon.h"
#include "protocols/fifo_brb.h"
#include "protocols/pbft_lite.h"
#include "runtime/checkers.h"
#include "runtime/cluster.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

TEST(CombinedStress, ByzantineAndLossAndWots) {
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 101;
  cfg.sig_scheme = SigScheme::kWots;
  cfg.pacing.interval = sim_ms(20);
  cfg.net.drop_probability = 0.15;
  cfg.net.max_drops_per_pair = 10;
  cfg.byzantine[3] = ByzantineKind::kEquivocator;
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  BrbChecker checker;
  cluster.start();
  for (ServerId s = 0; s < 3; ++s) {
    checker.expect_broadcast(1 + s, s, brb::make_broadcast(val(s + 1)), true);
    cluster.request(s, 1 + s, brb::make_broadcast(val(s + 1)));
  }
  cluster.run_for(sim_sec(4));
  for (ServerId s = 0; s < 3; ++s) {
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      checker.record_delivery(s, ind.label,
                              brb::make_broadcast(*brb::parse_deliver(ind.indication)));
    }
  }
  const auto violations = checker.violations(cluster.correct_servers(), true);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(CombinedStress, PartitionPlusByzantineFlooder) {
  ClusterConfig cfg;
  cfg.n_servers = 7;
  cfg.seed = 103;
  cfg.pacing.interval = sim_ms(10);
  cfg.byzantine[6] = ByzantineKind::kFlooder;
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  // The flooder goes into side B — a server outside both sides would
  // bridge the cut and legitimately restore liveness early.
  cluster.network().partition({0, 1, 2}, {3, 4, 5, 6}, sim_ms(800));
  cluster.request(0, 1, brb::make_broadcast(val(5)));
  cluster.run_for(sim_ms(700));
  // 2f+1 = 5 > 3 reachable servers in side A — no quorum mid-cut.
  EXPECT_LT(cluster.indicated_count(1), 6u);
  cluster.run_for(sim_sec(3));
  EXPECT_EQ(cluster.indicated_count(1), 6u);
}

TEST(CombinedStress, MixedProtocolsUnderEquivocation) {
  brb::BrbFactory brb_factory;
  pbft::PbftFactory pbft_factory;
  fifo::FifoBrbFactory fifo_factory;
  beacon::BeaconFactory beacon_factory;
  ProtocolMux mux;
  mux.mount(1, 9, brb_factory);
  mux.mount(10, 19, pbft_factory);
  mux.mount(20, 29, fifo_factory);
  mux.mount(30, 39, beacon_factory);

  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 107;
  cfg.pacing.interval = sim_ms(10);
  cfg.byzantine[2] = ByzantineKind::kEquivocator;
  Cluster cluster(mux, cfg);
  cluster.start();

  cluster.request(0, 1, brb::make_broadcast(val(1)));
  cluster.request(0, 10, pbft::make_propose(val(2)));
  cluster.request(1, 20, fifo::make_broadcast(val(3)));
  cluster.request(1, 20, fifo::make_broadcast(val(4)));
  cluster.request(0, 30, beacon::make_contribute(0x1111));
  cluster.request(3, 30, beacon::make_contribute(0x2222));
  cluster.run_for(sim_sec(3));

  EXPECT_EQ(cluster.indicated_count(1), 3u);
  EXPECT_EQ(cluster.indicated_count(10), 3u);
  EXPECT_EQ(cluster.indicated_count(20), 3u);
  EXPECT_EQ(cluster.indicated_count(30), 3u);

  // FIFO stream stayed ordered at every correct server.
  for (ServerId s : cluster.correct_servers()) {
    std::vector<std::uint64_t> seqs;
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      if (ind.label != 20) continue;
      seqs.push_back(fifo::parse_deliver(ind.indication)->seq);
    }
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1}));
  }
}

TEST(CombinedStress, RecoveryUnderOngoingTraffic) {
  // Crash-recover a server while instances are in flight; the cluster
  // converges and the recovered server still delivers everything.
  // (Recovery in the Cluster harness: snapshot the gossip, rebuild a
  // Shim-free server — here we exercise the snapshot path under traffic
  // at the gossip layer via the cluster's own shim internals.)
  ClusterConfig cfg;
  cfg.n_servers = 4;
  cfg.seed = 109;
  cfg.pacing.interval = sim_ms(10);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  for (Label l = 1; l <= 12; ++l) {
    cluster.request(l % 4, l, brb::make_broadcast(val(static_cast<std::uint8_t>(l))));
  }
  cluster.run_for(sim_ms(200));
  // Snapshot + immediate restore round-trips even mid-traffic.
  const Bytes snapshot = cluster.shim(0).gossip().snapshot();
  EXPECT_GT(snapshot.size(), 1000u);
  cluster.run_for(sim_sec(2));
  for (Label l = 1; l <= 12; ++l) {
    EXPECT_EQ(cluster.indicated_count(l), 4u) << "label " << l;
  }
}

TEST(CombinedStress, SixteenServersHighLoad) {
  ClusterConfig cfg;
  cfg.n_servers = 16;  // f = 5
  cfg.seed = 113;
  cfg.pacing.interval = sim_ms(20);
  cfg.byzantine[13] = ByzantineKind::kSilent;
  cfg.byzantine[14] = ByzantineKind::kEquivocator;
  cfg.byzantine[15] = ByzantineKind::kGarbageSpammer;
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  for (Label l = 1; l <= 26; ++l) {
    cluster.request(l % 13, l, brb::make_broadcast(val(static_cast<std::uint8_t>(l))));
  }
  cluster.run_for(sim_sec(3));
  for (Label l = 1; l <= 26; ++l) {
    EXPECT_EQ(cluster.indicated_count(l), 13u) << "label " << l;
  }
}

}  // namespace
}  // namespace blockdag
