// Byzantine end-to-end tests: the §4 adversary behaviours against shim(BRB),
// plus equivocation accountability (Figure 3 at system scale).
#include <gtest/gtest.h>

#include "dag/equivocation.h"
#include "protocols/brb.h"
#include "runtime/checkers.h"
#include "runtime/cluster.h"

namespace blockdag {
namespace {

Bytes val(std::uint8_t v) { return Bytes{v}; }

ClusterConfig byz_config(std::uint32_t n, ByzantineKind kind, ServerId who,
                         std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_servers = n;
  cfg.seed = seed;
  cfg.pacing.interval = sim_ms(10);
  cfg.net.latency = {LatencyModel::Kind::kUniform, sim_ms(1), sim_ms(8)};
  cfg.byzantine[who] = kind;
  return cfg;
}

struct ByzParam {
  ByzantineKind kind;
  std::uint64_t seed;
};

std::string byz_name(const ::testing::TestParamInfo<ByzParam>& info) {
  return std::string(byzantine_kind_name(info.param.kind)) + "_seed" +
         std::to_string(info.param.seed);
}

class ByzantineSweep : public ::testing::TestWithParam<ByzParam> {};

TEST_P(ByzantineSweep, BrbPropertiesSurviveOneByzantineServer) {
  const auto p = GetParam();
  // n = 4, f = 1: server 3 is byzantine.
  auto cfg = byz_config(4, p.kind, 3, p.seed);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  BrbChecker checker;
  cluster.start();

  for (ServerId s = 0; s < 3; ++s) {
    const Label label = 50 + s;
    checker.expect_broadcast(label, s, brb::make_broadcast(val(s + 1)), true);
    cluster.request(s, label, brb::make_broadcast(val(s + 1)));
  }
  cluster.run_for(sim_sec(2));

  for (ServerId s = 0; s < 3; ++s) {
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      const auto v = brb::parse_deliver(ind.indication);
      ASSERT_TRUE(v.has_value());
      checker.record_delivery(s, ind.label, brb::make_broadcast(*v));
    }
  }
  const auto violations =
      checker.violations(cluster.correct_servers(), /*run_completed=*/true);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ByzantineSweep,
    ::testing::Values(ByzParam{ByzantineKind::kSilent, 1},
                      ByzParam{ByzantineKind::kSilent, 2},
                      ByzParam{ByzantineKind::kEquivocator, 1},
                      ByzParam{ByzantineKind::kEquivocator, 2},
                      ByzParam{ByzantineKind::kDuplicateReferencer, 1},
                      ByzParam{ByzantineKind::kFlooder, 1},
                      ByzParam{ByzantineKind::kBadSigner, 1},
                      ByzParam{ByzantineKind::kGarbageSpammer, 1}),
    byz_name);

TEST(Byzantine, EquivocatorSplitsStateButCorrectServersAgree) {
  auto cfg = byz_config(4, ByzantineKind::kEquivocator, 3, 9);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(0, 1, brb::make_broadcast(val(42)));
  cluster.run_for(sim_sec(2));

  // All correct servers delivered.
  EXPECT_EQ(cluster.indicated_count(1), 3u);

  // Scan server 0's DAG for equivocation proofs: the equivocator's two
  // chains must be visible (both halves' blocks mingle via references).
  EquivocationDetector detector;
  std::optional<EquivocationProof> proof;
  for (const BlockPtr& b : cluster.shim(0).dag().topological_order()) {
    if (auto p = detector.observe(b)) proof = p;
  }
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->offender, 3u);
  EXPECT_TRUE(EquivocationDetector::proof_is_valid(*proof));
  EXPECT_TRUE(detector.is_offender(3));
  for (ServerId s = 0; s < 3; ++s) EXPECT_FALSE(detector.is_offender(s));
}

TEST(Byzantine, BadSignerBlocksNeverEnterTheDag) {
  auto cfg = byz_config(4, ByzantineKind::kBadSigner, 2, 3);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.run_for(sim_sec(1));

  for (ServerId s : cluster.correct_servers()) {
    for (const BlockPtr& b : cluster.shim(s).dag().topological_order()) {
      EXPECT_NE(b->n(), 2u);  // no block by the bad signer was accepted
    }
    EXPECT_GT(cluster.shim(s).gossip().stats().blocks_rejected, 0u);
  }
}

TEST(Byzantine, FlooderCannotDuplicateDeliveries) {
  auto cfg = byz_config(4, ByzantineKind::kFlooder, 1, 4);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(0, 7, brb::make_broadcast(val(7)));
  cluster.run_for(sim_sec(1));

  for (ServerId s : cluster.correct_servers()) {
    std::size_t for_label = 0;
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      if (ind.label == 7) ++for_label;
    }
    EXPECT_EQ(for_label, 1u) << "server " << s;
  }
}

TEST(Byzantine, TwoByzantineOfSevenTolerated) {
  // n = 7 tolerates f = 2.
  ClusterConfig cfg;
  cfg.n_servers = 7;
  cfg.seed = 21;
  cfg.pacing.interval = sim_ms(10);
  cfg.byzantine[5] = ByzantineKind::kEquivocator;
  cfg.byzantine[6] = ByzantineKind::kSilent;
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  BrbChecker checker;
  cluster.start();
  checker.expect_broadcast(1, 0, brb::make_broadcast(val(99)), true);
  cluster.request(0, 1, brb::make_broadcast(val(99)));
  cluster.run_for(sim_sec(2));

  for (ServerId s : cluster.correct_servers()) {
    for (const UserIndication& ind : cluster.shim(s).indications()) {
      const auto v = brb::parse_deliver(ind.indication);
      checker.record_delivery(s, ind.label, brb::make_broadcast(*v));
    }
  }
  const auto violations = checker.violations(cluster.correct_servers(), true);
  EXPECT_TRUE(violations.empty()) << violations.front();
  EXPECT_EQ(cluster.indicated_count(1), 5u);
}

TEST(Byzantine, GarbageSpammerWastesNobody) {
  auto cfg = byz_config(4, ByzantineKind::kGarbageSpammer, 0, 5);
  brb::BrbFactory factory;
  Cluster cluster(factory, cfg);
  cluster.start();
  cluster.request(1, 2, brb::make_broadcast(val(1)));
  cluster.run_for(sim_sec(1));
  EXPECT_EQ(cluster.indicated_count(2), 3u);
  // Garbage never became a pending block (it does not even decode).
  for (ServerId s : cluster.correct_servers()) {
    EXPECT_EQ(cluster.shim(s).gossip().pending_blocks(), 0u);
  }
}

}  // namespace
}  // namespace blockdag
