// Scenario engine (DESIGN.md §6), tier-1 slice: a pinned seed set across
// all five embedded protocols runs the full randomized fault schedule —
// partitions, latency/drop regimes, crash/recovery churn, byzantine mixes,
// request bursts — with every checker on. The wide sweep lives in the
// `slow` ctest target tools/simctl_fuzz (seeds 0..200).
#include <gtest/gtest.h>

#include <set>

#include "runtime/scenario.h"

namespace blockdag {
namespace {

struct PinnedSeed {
  const char* protocol;
  std::uint64_t seed;
  std::uint32_t n;
};

TEST(Scenario, PinnedSeedSweep) {
  // Seeds 11 (bcb/10) and 24 (beacon/7) are the regressions that surfaced
  // while standing the engine up: persistent drop regimes starved the
  // post-quiesce convergence flush (Cluster::quiesce_and_converge) — keep
  // them pinned.
  const PinnedSeed pinned[] = {
      {"brb", 5, 4},     {"brb", 12, 7},   {"bcb", 1, 4},   {"bcb", 11, 10},
      {"fifo", 7, 4},    {"fifo", 22, 7},  {"pbft", 3, 4},  {"pbft", 33, 7},
      {"beacon", 24, 7}, {"beacon", 9, 4},
  };
  for (const PinnedSeed& p : pinned) {
    ScenarioConfig cfg;
    cfg.seed = p.seed;
    cfg.protocol = p.protocol;
    cfg.n_servers = p.n;
    const ScenarioResult result = run_scenario(cfg);
    EXPECT_TRUE(result.ok())
        << p.protocol << " seed " << p.seed << ": " << result.violations.front();
    EXPECT_TRUE(result.converged) << p.protocol << " seed " << p.seed;
    EXPECT_EQ(result.labels_complete, cfg.instances)
        << p.protocol << " seed " << p.seed;
    EXPECT_GT(result.blocks, 0u);
    EXPECT_GT(result.deliveries, 0u);
  }
}

TEST(Scenario, DeterministicReplay) {
  // The seed-replay contract: a scenario is a pure function of its config,
  // down to the run digest (DAG + interpretation digests + indication
  // logs). This is what makes a one-line fuzz repro exact.
  ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.protocol = "brb";
  cfg.n_servers = 7;
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  ASSERT_TRUE(a.ok()) << a.violations.front();
  EXPECT_EQ(a.run_digest, b.run_digest);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.violations, b.violations);

  // A different seed is (overwhelmingly) a different execution.
  cfg.seed = 43;
  const ScenarioResult c = run_scenario(cfg);
  EXPECT_NE(a.run_digest, c.run_digest);
}

TEST(Scenario, UnknownProtocolIsAnError) {
  EXPECT_FALSE(scenario_protocol_known("paxos"));
  ScenarioConfig cfg;
  cfg.protocol = "paxos";
  const ScenarioResult result = run_scenario(cfg);
  EXPECT_FALSE(result.ok());
}

TEST(FaultPlan, InvariantsAcrossSeeds) {
  // The checkers' soundness rests on every derived plan obeying the
  // invariants documented in faultplan.h; sweep them over many seeds and
  // sizes (a pure-function sweep — no simulation, so it is cheap).
  const std::uint32_t sizes[] = {4, 7, 10, 13};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.n_servers = sizes[seed % 4];
    const SimTime d = effective_duration(cfg);
    const FaultPlan plan = derive_fault_plan(cfg);

    // Determinism of the derivation itself.
    EXPECT_EQ(plan.summary(), derive_fault_plan(cfg).summary());

    EXPECT_LE(plan.byzantine.size(), max_faulty(cfg.n_servers)) << seed;
    EXPECT_GE(plan.pacing.interval, sim_ms(5));
    EXPECT_LE(plan.pacing.interval, sim_ms(12));

    std::set<ServerId> crashed;
    for (const auto& churn : plan.churn) {
      EXPECT_FALSE(plan.byzantine.count(churn.server)) << seed;
      EXPECT_TRUE(crashed.insert(churn.server).second) << seed;
      EXPECT_GE(churn.crash_at, (d * 45) / 100) << seed;
      EXPECT_GT(churn.recover_at, churn.crash_at) << seed;
      EXPECT_LE(churn.recover_at, (d * 85) / 100) << seed;
    }

    // Bursts cover every instance exactly once (they are sorted by time,
    // not by instance range).
    std::set<std::uint32_t> covered;
    for (const auto& burst : plan.bursts) {
      for (std::uint32_t i = 0; i < burst.count; ++i) {
        EXPECT_TRUE(covered.insert(burst.first_instance + i).second) << seed;
      }
      // Bursts finish (plus a few dissemination beats) before any crash
      // window opens: a burst's requests are always inscribed before their
      // target can crash, since the request buffer is not persisted.
      for (const auto& churn : plan.churn) {
        EXPECT_LT(burst.at + 3 * plan.pacing.interval, churn.crash_at) << seed;
      }
    }
    EXPECT_EQ(covered.size(), cfg.instances) << seed;
    if (!covered.empty()) {
      EXPECT_EQ(*covered.begin(), 0u) << seed;
      EXPECT_EQ(*covered.rbegin(), cfg.instances - 1) << seed;
    }

    for (const auto& partition : plan.partitions) {
      EXPECT_FALSE(partition.side_a.empty()) << seed;
      EXPECT_FALSE(partition.side_b.empty()) << seed;
      EXPECT_EQ(partition.side_a.size() + partition.side_b.size(), cfg.n_servers)
          << seed;
      EXPECT_GT(partition.heal_at, partition.at) << seed;
      EXPECT_LE(partition.heal_at, (d * 9) / 10) << seed;
    }

    for (const auto& regime : plan.regimes) {
      EXPECT_GE(regime.at, d / 10) << seed;
      EXPECT_LE(regime.at, (d * 8) / 10) << seed;
      EXPECT_GE(regime.max_drops_per_pair, 12u) << seed;
      EXPECT_LE(regime.drop_probability, 0.25) << seed;
    }
  }
}

TEST(Scenario, CrashChurnScenarioStaysCorrect) {
  // A seed whose plan actually crashes servers (pinning the crash-recovery
  // path end-to-end through the engine): derive plans until one has churn,
  // then run it.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.protocol = "brb";
    cfg.n_servers = 4;
    if (derive_fault_plan(cfg).churn.empty()) continue;
    const ScenarioResult result = run_scenario(cfg);
    EXPECT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.violations.front();
    EXPECT_TRUE(result.converged);
    return;
  }
  FAIL() << "no seed below 64 derives a crash-churn plan";
}

}  // namespace
}  // namespace blockdag
